"""Cross-scheduler determinism: the calendar queue replays the goldens.

Both event-queue backends pop in the identical total ``(time, seq)``
order, so scheduler choice must never change simulation behaviour --
only speed.  This test forces every simulation built by the golden
cases onto the calendar queue (including the auto-migration machinery
being bypassed entirely) and requires the exact snapshots recorded for
the heap: same report, same reported-cost history, bit for bit.

Together with ``test_golden_reports`` (which runs the same cases under
the default scheduler) this pins the equivalence on every forwarding
feature the goldens cross: single path, both multipath modes, line
errors, flow control, and link failure/recovery.
"""

import json
import pathlib

import pytest

from repro.des.engine import Simulator
from tests.golden.cases import CASES, run_case

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent.parent / "golden"


def _golden():
    with open(GOLDEN_PATH / "reports.json") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_report_identical_on_calendar(name, monkeypatch):
    monkeypatch.setattr(Simulator, "DEFAULT_SCHEDULER", "calendar")
    golden = _golden()[name]
    snapshot = run_case(name)
    assert snapshot["cost_history_len"] == golden["cost_history_len"]
    assert snapshot["cost_history_sha256"] == golden["cost_history_sha256"], (
        f"{name}: calendar scheduler diverged from the recorded heap run"
    )
    assert snapshot["report"] == golden["report"]
