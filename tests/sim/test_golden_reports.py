"""Golden same-seed regression: optimized runs must stay bit-identical.

The hot-path layer (SPF cache, compiled forwarding tables, DES fast
path) promises to be *pure* speed: same seed, same
:class:`SimulationReport`, same reported-cost history, bit for bit.
``tests/golden/reports.json`` holds snapshots recorded from the
pre-optimization tree; this test replays each case and compares the
full snapshot, including the SHA-256 of the cost history that pins the
routing dynamics.

If one of these fails, a change altered simulation *behavior*, not just
speed.  Either find the unintended divergence, or -- if the behavior
change is deliberate and documented -- re-record with
``PYTHONPATH=src:tests python tests/golden/capture.py``.
"""

import json
import pathlib

import pytest

from tests.golden.cases import CASES, run_case

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent.parent / "golden"


def _golden():
    with open(GOLDEN_PATH / "reports.json") as handle:
        return json.load(handle)


def test_every_case_has_a_snapshot():
    assert sorted(_golden()) == sorted(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_report_identical(name):
    golden = _golden()[name]
    snapshot = run_case(name)
    assert snapshot["cost_history_len"] == golden["cost_history_len"]
    assert snapshot["cost_history_sha256"] == golden["cost_history_sha256"], (
        f"{name}: reported-cost history diverged from the recorded run"
    )
    assert snapshot["report"] == golden["report"]
