"""Tests for the canned scenario library."""

import pytest

from repro.sim import (
    BellmanFordSimulation,
    NetworkSimulation,
    ScenarioConfig,
    build_scenario,
    scenario_names,
)


def test_names_cover_paper_setups():
    names = scenario_names()
    for expected in ("may87", "aug87", "arpanet-1969", "milnet-dspf",
                     "milnet-hnspf", "two-region-dspf",
                     "two-region-hnspf"):
        assert expected in names


def test_unknown_scenario_lists_known():
    with pytest.raises(KeyError, match="may87"):
        build_scenario("nsfnet")


def test_may87_is_dspf_on_arpanet():
    sim = build_scenario("may87", duration_s=30.0, warmup_s=5.0)
    assert isinstance(sim, NetworkSimulation)
    assert sim.metric.name == "D-SPF"
    assert len(sim.network) == 57
    assert sim.traffic.total_bps() == pytest.approx(366_260.0)


def test_aug87_offers_13_percent_more():
    may = build_scenario("may87", duration_s=30.0, warmup_s=5.0)
    aug = build_scenario("aug87", duration_s=30.0, warmup_s=5.0)
    assert aug.metric.name == "HN-SPF"
    assert aug.traffic.total_bps() / may.traffic.total_bps() == \
        pytest.approx(1.13, abs=0.01)


def test_1969_scenario_is_bellman_ford():
    sim = build_scenario("arpanet-1969", duration_s=30.0, warmup_s=5.0)
    assert isinstance(sim, BellmanFordSimulation)


def test_explicit_config_wins():
    config = ScenarioConfig(duration_s=42.0, warmup_s=1.0, seed=9)
    sim = build_scenario("two-region-hnspf", duration_s=999.0,
                         config=config)
    assert sim.config.duration_s == 42.0
    assert sim.config.seed == 9


@pytest.mark.slow
def test_scenarios_actually_run():
    for name in scenario_names():
        sim = build_scenario(name, duration_s=40.0, warmup_s=10.0)
        report = sim.run()
        assert report.delivered_packets > 0, name
