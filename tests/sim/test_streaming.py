"""Tests for streaming fleet aggregation (``run_many(..., stream=)``)."""

import io
from dataclasses import asdict

import pytest

from repro.obs.streaming import (
    FleetResult,
    ProgressMonitor,
    StreamAggregator,
    StreamConfig,
)
from repro.obs.telemetry import RunTelemetry
from repro.sim import (
    RunSpec,
    ScenarioConfig,
    combined_telemetry,
    run_many,
)

_QUICK = dict(duration_s=30.0, warmup_s=5.0)


def _specs(count=4, scenario="two-region-hnspf"):
    return [
        RunSpec(scenario, ScenarioConfig(**_QUICK, seed=seed))
        for seed in range(1, count + 1)
    ]


def _comparable(telemetry):
    """Telemetry dict minus the wall-clock (nondeterministic) fields."""
    values = telemetry.to_dict()
    values.pop("wall_s")
    values.pop("phase_wall_s")
    return values


# ----------------------------------------------------------------------
# Master-side reducers
# ----------------------------------------------------------------------
def test_stream_aggregator_merges_deltas_per_run_and_fleet():
    aggregator = StreamAggregator()
    first = RunTelemetry(runs=1, events_processed=10)
    second = RunTelemetry(runs=0, events_processed=5)
    aggregator.add_delta(0, first)
    aggregator.add_delta(0, second)
    aggregator.add_delta(1, RunTelemetry(runs=1, events_processed=100))
    assert aggregator.deltas_received == 3
    assert aggregator.run_telemetry(0).events_processed == 15
    assert aggregator.run_telemetry(0).runs == 1
    assert aggregator.run_telemetry(2) is None
    assert aggregator.total.runs == 2
    assert aggregator.total.events_processed == 115
    assert set(aggregator.per_run()) == {0, 1}


def test_progress_monitor_counts_and_eta():
    clock = iter([0.0, 10.0, 10.0, 10.0, 10.0]).__next__
    monitor = ProgressMonitor(4, clock=clock)
    assert monitor.eta_s is None
    monitor.note_started(0)
    monitor.note_completed(0)
    monitor.note_failed(1)
    # 2 finished in 10 s -> 2 remaining take ~10 s more.
    assert monitor.finished == 2
    assert monitor.eta_s == pytest.approx(10.0)
    assert "runs 2/4 done" in monitor.status()
    assert "1 failed" in monitor.status()


def test_progress_monitor_status_line_renders_and_closes():
    stream = io.StringIO()
    monitor = ProgressMonitor(2, status_line=True, stream=stream)
    monitor.note_completed(0)
    monitor.close()
    output = stream.getvalue()
    assert "runs 1/2 done" in output
    assert output.endswith("\n")
    # close() is idempotent and quiet without a line open.
    monitor.close()


def test_stream_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(checkpoint_s=0.0)
    with pytest.raises(ValueError):
        run_many(_specs(2), stream=True, retries=1)
    with pytest.raises(ValueError):
        run_many(_specs(2), stream=True, timeout_s=5.0)


# ----------------------------------------------------------------------
# End-to-end equivalence (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def batch_baseline():
    specs = _specs()
    reports = run_many(specs, processes=2)
    return specs, reports, combined_telemetry(reports)


@pytest.mark.slow
def test_streaming_equals_combined_telemetry_pooled(batch_baseline):
    specs, reports, combined = batch_baseline
    fleet = run_many(specs, processes=2, stream=True)
    assert isinstance(fleet, FleetResult)
    assert fleet.ok
    assert _comparable(fleet.telemetry) == _comparable(combined)
    # The rebuilt reports are the batch path's reports, field for field.
    for rebuilt, reference in zip(fleet.reports, reports):
        assert asdict(rebuilt) == asdict(reference)
        assert rebuilt.telemetry is not None
    assert fleet.progress.completed == len(specs)


def test_streaming_equals_combined_telemetry_serial(batch_baseline):
    specs, reports, combined = batch_baseline
    fleet = run_many(specs, processes=1, stream=True)
    assert _comparable(fleet.telemetry) == _comparable(combined)
    for rebuilt, reference in zip(fleet.reports, reports):
        assert asdict(rebuilt) == asdict(reference)


def test_checkpointed_streaming_preserves_results(batch_baseline):
    """Periodic deltas leave reports bit-identical; only the kernel
    event counters additionally count the checkpoint timer's own ticks."""
    specs, reports, combined = batch_baseline
    fleet = run_many(
        specs, processes=1, stream=StreamConfig(checkpoint_s=10.0)
    )
    for rebuilt, reference in zip(fleet.reports, reports):
        assert asdict(rebuilt) == asdict(reference)
    # Several deltas per run flowed home, not one.
    assert fleet.progress.completed == len(specs)
    streamed = _comparable(fleet.telemetry)
    expected = _comparable(combined)
    kernel = ("events_processed", "events_heap", "events_calendar",
              "events_pending")
    for name in kernel:
        streamed.pop(name)
        expected.pop(name)
    assert streamed == expected


def test_streaming_collects_failures():
    specs = _specs(2) + [
        RunSpec("_poison-fail", ScenarioConfig(**_QUICK, seed=9))
    ]
    fleet = run_many(specs, processes=1, stream=True, on_error="collect")
    assert not fleet.ok
    assert [r is not None for r in fleet.reports] == [True, True, False]
    [failure] = fleet.failures
    assert (failure.scenario, failure.seed) == ("_poison-fail", 9)
    assert failure.index == 2
    assert fleet.progress.failed == 1
    # The two completed runs still aggregated.
    assert fleet.telemetry.runs == 2


def test_streaming_raises_on_first_failure_by_default():
    from repro.sim import RunFailedError

    specs = [RunSpec("_poison-fail", ScenarioConfig(**_QUICK, seed=3))]
    with pytest.raises(RunFailedError, match="_poison-fail"):
        run_many(specs, processes=1, stream=True)
