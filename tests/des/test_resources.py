"""Unit tests for Store queues."""

import pytest

from repro.des import Simulator, Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for item in (1, 2, 3):
        assert store.try_put(item)
    received = []

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    sim.process(consumer(sim, store))
    sim.run()
    assert received == [1, 2, 3]


def test_try_put_refused_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert store.is_full
    assert not store.try_put("c")
    assert list(store.items) == ["a", "b"]


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_get_blocks_until_item_arrives():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer(sim, store):
        item = yield store.get()
        log.append((item, sim.now))

    def producer(sim, store):
        yield sim.timeout(7.0)
        store.try_put("late-item")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert log == [("late-item", 7.0)]


def test_blocked_getters_served_fifo():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer(sim, store, tag):
        item = yield store.get()
        log.append((tag, item))

    sim.process(consumer(sim, store, "first"))
    sim.process(consumer(sim, store, "second"))
    sim.run(until=1.0)
    store.try_put("x")
    store.try_put("y")
    sim.run()
    assert log == [("first", "x"), ("second", "y")]


def test_put_blocks_when_full_then_resumes():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim, store):
        yield store.put("a")
        log.append(("a-in", sim.now))
        yield store.put("b")
        log.append(("b-in", sim.now))

    def consumer(sim, store):
        yield sim.timeout(5.0)
        item = yield store.get()
        log.append((f"got-{item}", sim.now))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    # The blocked putter is released the instant the getter drains the slot,
    # before the consumer process itself resumes, so "b-in" logs first.
    assert log == [("a-in", 0.0), ("b-in", 5.0), ("got-a", 5.0)]
    assert list(store.items) == ["b"]


def test_try_get_returns_none_when_empty():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.try_put(42)
    assert store.try_get() == 42


def test_try_get_admits_blocked_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.try_put("a")
    blocked_put = store.put("b")
    assert not blocked_put.triggered
    assert store.try_get() == "a"
    assert blocked_put.triggered
    assert list(store.items) == ["b"]


def test_try_get_with_blocked_getter_raises():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim, store):
        yield store.get()

    sim.process(consumer(sim, store))
    sim.run(until=0.0)
    with pytest.raises(RuntimeError):
        store.try_get()


def test_len_and_repr():
    sim = Simulator()
    store = Store(sim, capacity=3, name="txq")
    store.try_put(1)
    assert len(store) == 1
    assert "txq" in repr(store)
    assert "1/3" in repr(store)
