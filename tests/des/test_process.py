"""Unit tests for generator-based processes."""

import pytest

from repro.des import Interrupt, Simulator


def test_process_runs_to_completion_with_return_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return "finished"

    proc = sim.process(worker(sim))
    assert sim.run_until_event(proc) == "finished"
    assert sim.now == 5.0


def test_process_receives_event_values():
    sim = Simulator()
    seen = []

    def worker(sim):
        value = yield sim.timeout(1.0, value="tick")
        seen.append(value)

    sim.process(worker(sim))
    sim.run()
    assert seen == ["tick"]


def test_process_is_alive_until_done():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(10.0)

    proc = sim.process(worker(sim))
    sim.run(until=5.0)
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_waiting_on_another_process():
    sim = Simulator()
    order = []

    def child(sim):
        yield sim.timeout(4.0)
        order.append("child")
        return 99

    def parent(sim):
        result = yield sim.process(child(sim))
        order.append(f"parent-got-{result}")

    sim.process(parent(sim))
    sim.run()
    assert order == ["child", "parent-got-99"]


def test_waiting_on_already_finished_process():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)
        return "early"

    quick_proc = sim.process(quick(sim))
    sim.run(until=2.0)
    assert quick_proc.triggered

    results = []

    def late(sim):
        value = yield quick_proc
        results.append(value)

    sim.process(late(sim))
    sim.run()
    assert results == ["early"]


def test_unhandled_exception_propagates_when_unwatched():
    sim = Simulator()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaboom")

    sim.process(crasher(sim))
    with pytest.raises(ValueError, match="kaboom"):
        sim.run()


def test_exception_delivered_to_waiting_parent():
    sim = Simulator()

    def crasher(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.process(crasher(sim))
        except ValueError as exc:
            return f"caught-{exc}"

    proc = sim.process(parent(sim))
    assert sim.run_until_event(proc) == "caught-inner"


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt(cause="wake-up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", "wake-up", 3.0)]


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [6.0]


def test_interrupting_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield "not an event"

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except TypeError:
            return "typed"

    proc = sim.process(parent(sim))
    assert sim.run_until_event(proc) == "typed"


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process("not a generator")


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def looper(sim, tag, period):
        for _ in range(3):
            yield sim.timeout(period)
            order.append((tag, sim.now))

    sim.process(looper(sim, "a", 2.0))
    sim.process(looper(sim, "b", 3.0))
    sim.run()
    # At t=6 both fire; b's timeout was scheduled earlier (at t=3 vs t=4),
    # so FIFO-by-scheduling-order resumes b first.
    assert order == [
        ("a", 2.0), ("b", 3.0), ("a", 4.0),
        ("b", 6.0), ("a", 6.0), ("b", 9.0),
    ]
