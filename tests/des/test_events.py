"""Unit tests for event primitives."""

import pytest

from repro.des import AllOf, AnyOf, Simulator


def test_event_initially_untriggered():
    sim = Simulator()
    event = sim.event("probe")
    assert not event.triggered
    with pytest.raises(RuntimeError):
        _ = event.value


def test_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    event.succeed(123)
    assert event.triggered
    assert event.ok
    assert event.value == 123


def test_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()
    with pytest.raises(RuntimeError):
        event.fail(ValueError())


def test_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_fail_marks_not_ok():
    sim = Simulator()
    event = sim.event()
    event.fail(KeyError("x"))
    assert event.triggered
    assert not event.ok
    assert isinstance(event.value, KeyError)


def test_callbacks_run_at_trigger_time_via_queue():
    sim = Simulator()
    seen = []
    event = sim.event()
    event.callbacks.append(lambda evt: seen.append(evt.value))
    event.succeed("hello")
    assert seen == []  # not synchronous
    sim.run()
    assert seen == ["hello"]


def test_allof_collects_values_in_order():
    sim = Simulator()
    t_late = sim.timeout(5.0, value="late")
    t_early = sim.timeout(1.0, value="early")
    combined = AllOf(sim, [t_late, t_early])
    assert sim.run_until_event(combined) == ["late", "early"]
    assert sim.now == 5.0


def test_allof_empty_is_vacuously_true():
    sim = Simulator()
    combined = AllOf(sim, [])
    sim.run()
    assert combined.triggered
    assert combined.value == []


def test_allof_fails_fast_on_failure():
    sim = Simulator()
    bad = sim.event()
    good = sim.timeout(10.0)
    combined = AllOf(sim, [bad, good])
    bad.fail(RuntimeError("bad"))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run_until_event(combined)


def test_anyof_fires_with_first_value():
    sim = Simulator()
    slow = sim.timeout(9.0, value="slow")
    fast = sim.timeout(2.0, value="fast")
    first = AnyOf(sim, [slow, fast])
    assert sim.run_until_event(first) == "fast"
    assert sim.now == 2.0


def test_anyof_with_pretriggered_event():
    sim = Simulator()
    done = sim.event()
    done.succeed("instant")
    first = AnyOf(sim, [done, sim.timeout(50.0)])
    sim.run(until=0.0)
    assert first.triggered
    assert first.value == "instant"


def test_timeout_cannot_be_retriggered():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    with pytest.raises(RuntimeError):
        timeout.succeed()
    with pytest.raises(RuntimeError):
        timeout.fail(ValueError())
