"""Property tests for the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Simulator, Store


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0),
        min_size=1,
        max_size=30,
    )
)
def test_property_events_fire_in_time_order(delays):
    """Whatever order timeouts are created in, callbacks fire in
    nondecreasing time order (ties by creation order)."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.timeout(delay).callbacks.append(
            lambda evt, d=delay: fired.append((sim.now, d))
        )
    sim.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert sorted(d for _t, d in fired) == sorted(delays)


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(0, 999)),
            st.tuples(st.just("get"), st.just(0)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_store_is_fifo(operations):
    """Any interleaving of try_put/try_get preserves FIFO order."""
    sim = Simulator()
    store = Store(sim)
    put_order = []
    got_order = []
    for op, value in operations:
        if op == "put":
            store.try_put(value)
            put_order.append(value)
        else:
            item = store.try_get()
            if item is not None:
                got_order.append(item)
    # Drain the rest.
    while True:
        item = store.try_get()
        if item is None:
            break
        got_order.append(item)
    assert got_order == put_order


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    values=st.lists(st.integers(), min_size=1, max_size=20),
)
def test_property_bounded_store_never_exceeds_capacity(capacity, values):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    accepted = 0
    for value in values:
        if store.try_put(value):
            accepted += 1
        assert len(store) <= capacity
    assert accepted == min(len(values), capacity)


@settings(max_examples=30, deadline=None)
@given(
    periods=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=5
    )
)
def test_property_process_clocks_are_exact(periods):
    """Processes wake at exactly the sum of their timeouts -- no drift."""
    sim = Simulator()
    results = {}

    def sleeper(sim, index, waits):
        for wait in waits:
            yield sim.timeout(wait)
        results[index] = sim.now

    for index, period in enumerate(periods):
        waits = [period] * 3
        sim.process(sleeper(sim, index, waits))
    sim.run()
    for index, period in enumerate(periods):
        assert abs(results[index] - 3 * period) < 1e-9
