"""CalendarQueue edge cases.

The calendar queue stages pushes (a pushed entry is only hashed into
its bucket at the next consultation) and resizes its bucket array as
the population grows and shrinks.  These tests pin the interplay of
those two mechanisms -- a staged entry must survive any interleaving of
``peek_time`` consultations and resizes, in the exact ``(time, seq)``
total order the heap would give -- and the width recomputation on a
population whose gaps grow monotonically (the sparse far-future tail
left behind once a burst drains).
"""

import random

from repro.des.engine import CalendarQueue


def _entry(time, seq):
    """A scheduler entry shaped like the simulator's call tuples."""
    return (time, seq, None, ())


def _drain_all(queue):
    out = []
    while len(queue):
        out.append(queue.pop())
    return out


def test_staged_pushes_survive_peek_interleaved_with_resize():
    """Pushes staged around consultations drain in exact total order.

    The first ``peek_time`` drains a population big enough to trigger
    the expand resize; entries pushed *after* that consultation --
    including one earlier than everything already bucketed, which must
    rewind the dequeue cursor -- are drained by the next peek, and the
    pop sequence is the same sorted order a heap would produce.
    """
    queue = CalendarQueue(width=0.01)
    seq = iter(range(10_000))
    pushed = []

    # Enough to blow past expand_at (= 2 * MIN_BUCKETS) in one drain.
    for _ in range(200):
        entry = _entry(random.Random(42).uniform(1.0, 2.0), next(seq))
        queue.push(entry)
        pushed.append(entry)
    rng = random.Random(7)
    for _ in range(300):
        entry = _entry(rng.uniform(1.0, 2.0), next(seq))
        queue.push(entry)
        pushed.append(entry)

    assert queue.peek_time() == min(e[0] for e in pushed)
    assert queue.resizes >= 1, "500 entries must expand 16 initial buckets"

    # Stage more around further consultations: a mid-range batch, then
    # one entry earlier than the entire bucketed population (cursor
    # rewind), then a far-future one (beyond the current calendar year).
    late = [_entry(rng.uniform(1.5, 3.0), next(seq)) for _ in range(50)]
    for entry in late:
        queue.push(entry)
    pushed.extend(late)
    queue.peek_time()  # drains the batch; resize bookkeeping may run
    early = _entry(0.25, next(seq))
    queue.push(early)
    pushed.append(early)
    assert queue.peek_time() == 0.25, "staged earlier entry must rewind"
    far = _entry(500.0, next(seq))
    queue.push(far)
    pushed.append(far)

    assert len(queue) == len(pushed)
    assert _drain_all(queue) == sorted(pushed)


def test_staged_push_during_shrink_heavy_pop_sequence():
    """Interleaving pops (which shrink) with staged pushes loses nothing.

    Popping a large population down forces shrink resizes from inside
    ``pop``; entries staged between pops must hash into the *new*
    layout and still come out in global order.
    """
    queue = CalendarQueue(width=0.001)
    rng = random.Random(11)
    seq = iter(range(10_000))
    live = [_entry(rng.uniform(0.0, 1.0), next(seq)) for _ in range(600)]
    for entry in live:
        queue.push(entry)
    queue.peek_time()
    grown = queue._nbuckets
    assert grown > CalendarQueue.MIN_BUCKETS

    popped = []
    replenished = 0
    while len(queue):
        popped.append(queue.pop())
        if replenished < 40 and len(popped) % 10 == 0:
            # Staged while the array is shrinking underneath it; must
            # never be dropped and must sort after the entries already
            # popped (pushes land later than the current minimum).
            entry = _entry(1.0 + replenished * 0.01, next(seq))
            queue.push(entry)
            live.append(entry)
            replenished += 1
    assert queue.resizes >= 2, "draining 600 entries must shrink"
    assert queue._nbuckets < grown
    assert popped == sorted(live)


def test_width_recomputes_on_monotonically_sparse_tail():
    """A sparse, widening tail re-spreads to a proportionally wider width.

    A dense burst plus a tail whose gaps double at every step: while
    the burst dominates, the width stays tight; once the burst drains
    and a shrink resize re-samples the survivors, the median-gap rule
    must pick a width matched to the sparse tail -- wide enough that
    the forward scan does not crawl bucket-by-bucket through years of
    empty calendar, which is exactly the regime the ``_find`` fallback
    (every entry beyond one calendar year) covers.
    """
    queue = CalendarQueue(width=0.01)
    seq = iter(range(10_000))
    burst = [_entry(i * 0.001, next(seq)) for i in range(500)]
    tail, when = [], 10.0
    for step in range(12):
        tail.append(_entry(when, next(seq)))
        when += 0.5 * (2 ** step)  # gaps: 0.5, 1, 2, ... 1024 seconds
    for entry in burst + tail:
        queue.push(entry)

    drained = []
    for _ in range(len(burst)):
        drained.append(queue.pop())
    assert drained == sorted(burst)

    # The burst is gone; the pops above shrank the bucket array and
    # re-picked the width from the surviving sparse tail.
    assert queue.resizes >= 2
    tight_width = 0.01
    assert queue._width > tight_width * 10, (
        f"width {queue._width:g} still sized for the drained burst"
    )
    assert _drain_all(queue) == sorted(tail)
    assert len(queue) == 0
