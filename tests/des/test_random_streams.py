"""Unit tests for named random streams."""

import pytest

from repro.des import RandomStreams


def test_same_name_same_sequence():
    a = RandomStreams(master_seed=7)
    b = RandomStreams(master_seed=7)
    seq_a = [a.stream("traffic").random() for _ in range(10)]
    seq_b = [b.stream("traffic").random() for _ in range(10)]
    assert seq_a == seq_b


def test_different_names_are_decorrelated():
    streams = RandomStreams(master_seed=7)
    seq_a = [streams.stream("alpha").random() for _ in range(10)]
    seq_b = [streams.stream("beta").random() for _ in range(10)]
    assert seq_a != seq_b


def test_different_master_seeds_differ():
    seq_a = [RandomStreams(1).stream("x").random() for _ in range(5)]
    seq_b = [RandomStreams(2).stream("x").random() for _ in range(5)]
    assert seq_a != seq_b


def test_stream_independent_of_creation_order():
    first = RandomStreams(3)
    first.stream("aaa")
    value_after_other = first.stream("zzz").random()

    second = RandomStreams(3)
    value_alone = second.stream("zzz").random()
    assert value_after_other == value_alone


def test_exponential_mean_roughly_correct():
    streams = RandomStreams(11)
    n = 20000
    mean = sum(streams.exponential("arrivals", 4.0) for _ in range(n)) / n
    assert mean == pytest.approx(4.0, rel=0.05)


def test_exponential_rejects_bad_mean():
    streams = RandomStreams(0)
    with pytest.raises(ValueError):
        streams.exponential("x", 0.0)


def test_uniform_within_bounds():
    streams = RandomStreams(5)
    for _ in range(100):
        value = streams.uniform("u", 2.0, 3.0)
        assert 2.0 <= value < 3.0


def test_choice_picks_members():
    streams = RandomStreams(9)
    options = ["red", "green", "blue"]
    picks = {streams.choice("c", options) for _ in range(50)}
    assert picks <= set(options)
    assert len(picks) > 1
