"""Unit tests for the simulation event loop."""

import pytest

from repro.des import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=42.0)
    assert sim.now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    sim.timeout(5.0).callbacks.append(lambda evt: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_bounds_execution():
    sim = Simulator()
    fired = []
    for delay in (1.0, 2.0, 3.0):
        sim.timeout(delay).callbacks.append(
            lambda evt, d=delay: fired.append(d)
        )
    sim.run(until=2.0)
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_sets_clock_even_without_events():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(1.0).callbacks.append(lambda evt, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_step_with_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_scheduling_into_the_past_raises():
    sim = Simulator(start_time=5.0)
    event = sim.event()
    with pytest.raises(SimulationError):
        sim._schedule_at(1.0, event)


def test_run_until_event_returns_value():
    sim = Simulator()
    target = sim.timeout(3.0, value="done")
    assert sim.run_until_event(target) == "done"
    assert sim.now == 3.0


def test_run_until_event_respects_limit():
    sim = Simulator()
    target = sim.timeout(10.0)
    with pytest.raises(SimulationError):
        sim.run_until_event(target, limit=5.0)


def test_run_until_event_raises_on_failed_event():
    sim = Simulator()
    event = sim.event()
    sim.timeout(1.0).callbacks.append(
        lambda evt: event.fail(ValueError("boom"))
    )
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_event(event)


def test_run_until_event_detects_drained_queue():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_event(never)
