"""Tests for the per-line-type parameter sets against the paper's anchors."""

import pytest

from repro.metrics.params import (
    DEFAULT_DSPF_PARAMS,
    DEFAULT_HNSPF_PARAMS,
    HOP_UNITS,
    DspfParams,
    HnspfParams,
)
from repro.topology import LINE_TYPES, line_type


class TestHnspfAnchors:
    """Every constant the paper states, checked literally."""

    def test_56k_terrestrial_min_30_max_90(self):
        p = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert p.min_cost == 30
        assert p.max_cost == 90

    def test_max_is_two_additional_hops(self):
        # "the largest value it can report is only two additional hops in a
        # homogeneous network"
        p = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert p.max_cost == p.min_cost + 2 * HOP_UNITS

    def test_56k_threshold_is_50_percent(self):
        assert DEFAULT_HNSPF_PARAMS["56K-T"].utilization_threshold == 0.5

    def test_satellite_idle_at_most_twice_terrestrial(self):
        # "a 56 kb/s satellite trunk can appear no more than twice as
        # expensive as its terrestrial counterpart"
        t = DEFAULT_HNSPF_PARAMS["56K-T"]
        s = DEFAULT_HNSPF_PARAMS["56K-S"]
        assert s.min_cost == 2 * t.min_cost
        assert s.max_cost == t.max_cost  # equal when highly utilized

    def test_full_96_about_7x_idle_56(self):
        # "a fully utilized 9.6 kb/s line can report a value only about 7
        # times greater than that by an idle 56 kb/s line"
        ratio = DEFAULT_HNSPF_PARAMS["9.6K-T"].max_cost / \
            DEFAULT_HNSPF_PARAMS["56K-T"].min_cost
        assert 6.0 <= ratio <= 8.0

    def test_idle_56_satellite_cheaper_than_idle_96(self):
        # "an idle 56 kb/s satellite line appears more favorable than an
        # idle 9.6 kb/s line"
        assert DEFAULT_HNSPF_PARAMS["56K-S"].min_cost < \
            DEFAULT_HNSPF_PARAMS["9.6K-T"].min_cost

    def test_max_is_3x_zero_prop_min_for_all_types(self):
        # "the maximum value for a particular line is approximately three
        # times the minimum value for a zero-propagation-delay line of the
        # same type"
        for name in ("56K-T", "9.6K-T"):
            p = DEFAULT_HNSPF_PARAMS[name]
            assert p.max_cost == 3 * p.min_cost
        for sat, ter in (("56K-S", "56K-T"), ("9.6K-S", "9.6K-T")):
            assert DEFAULT_HNSPF_PARAMS[sat].max_cost == \
                3 * DEFAULT_HNSPF_PARAMS[ter].min_cost

    def test_movement_limits_are_about_half_a_hop(self):
        # up: "a little more than a half-hop"; down one unit less.
        p = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert p.min_cost // 2 < p.max_up <= p.min_cost // 2 + 3
        assert p.max_down == p.max_up - 1

    def test_min_change_a_little_less_than_half_hop(self):
        p = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert p.min_cost // 2 - 3 <= p.min_change < p.min_cost // 2

    def test_every_line_type_has_params(self):
        assert set(DEFAULT_HNSPF_PARAMS) == set(LINE_TYPES)


class TestHnspfParamsBehaviour:
    def test_cost_flat_below_threshold(self):
        p = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert p.cost_at_utilization(0.0) == 30
        assert p.cost_at_utilization(0.3) == 30
        assert p.cost_at_utilization(0.5) == pytest.approx(30)

    def test_cost_linear_above_threshold(self):
        p = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert p.cost_at_utilization(0.75) == pytest.approx(60)
        assert p.cost_at_utilization(1.0) == pytest.approx(90)

    def test_slope_and_offset_consistent(self):
        for p in DEFAULT_HNSPF_PARAMS.values():
            assert p.raw_cost(1.0) == pytest.approx(p.max_cost)
            assert p.raw_cost(p.utilization_threshold) == \
                pytest.approx(p.min_cost)

    def test_validation_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            HnspfParams("x", min_cost=0, max_cost=90,
                        utilization_threshold=0.5,
                        max_up=17, max_down=16, min_change=13)
        with pytest.raises(ValueError):
            HnspfParams("x", min_cost=30, max_cost=20,
                        utilization_threshold=0.5,
                        max_up=17, max_down=16, min_change=13)
        with pytest.raises(ValueError):
            HnspfParams("x", min_cost=30, max_cost=900,
                        utilization_threshold=0.5,
                        max_up=17, max_down=16, min_change=13)

    def test_validation_enforces_march_up_asymmetry(self):
        # Anything other than the paper's asymmetry (or the symmetric
        # ablation variant) is rejected.
        with pytest.raises(ValueError):
            HnspfParams("x", min_cost=30, max_cost=90,
                        utilization_threshold=0.5,
                        max_up=17, max_down=15, min_change=13)
        with pytest.raises(ValueError):
            HnspfParams("x", min_cost=30, max_cost=90,
                        utilization_threshold=0.5,
                        max_up=17, max_down=18, min_change=13)
        # Symmetric limits are allowed, for ablation studies only.
        symmetric = HnspfParams("x", min_cost=30, max_cost=90,
                                utilization_threshold=0.5,
                                max_up=17, max_down=17, min_change=13)
        assert symmetric.max_down == symmetric.max_up

    def test_validation_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            HnspfParams("x", min_cost=30, max_cost=90,
                        utilization_threshold=1.0,
                        max_up=17, max_down=16, min_change=13)

    def test_derive_reproduces_56k_anchor(self):
        derived = HnspfParams.derive(line_type("56K-T"))
        assert derived.min_cost == 30
        assert derived.max_cost == 90

    def test_derive_reproduces_96k_anchor(self):
        derived = HnspfParams.derive(line_type("9.6K-T"))
        assert derived.min_cost == 70
        assert derived.max_cost == 210


class TestDspfParams:
    def test_56k_bias_is_2_units(self):
        # "2 units (this is the delay metric's bias value for a 56 kb/s
        # line)"
        assert DEFAULT_DSPF_PARAMS["56K-T"].bias == 2

    def test_96k_bias_larger(self):
        assert DEFAULT_DSPF_PARAMS["9.6K-T"].bias > \
            DEFAULT_DSPF_PARAMS["56K-T"].bias

    def test_loaded_96_about_127x_idle_56(self):
        # "a heavily loaded 9.6 kb/s line can appear 127 times less
        # attractive than a lightly loaded 56 kb/s line"
        ratio = DEFAULT_DSPF_PARAMS["9.6K-T"].max_cost / \
            DEFAULT_DSPF_PARAMS["56K-T"].bias
        assert 100 <= ratio <= 130

    def test_loaded_56_about_20x_idle_56(self):
        # The 8-bit field lets a 56 kb/s line range far beyond 20x; the
        # 20x figure is about *typical* heavy loading (delay ~ 256 ms).
        p = DEFAULT_DSPF_PARAMS["56K-T"]
        heavy_units = p.delay_ms_to_units(256.0)
        assert heavy_units == pytest.approx(20 * p.bias, abs=2)

    def test_quantization_floors_at_bias(self):
        p = DEFAULT_DSPF_PARAMS["56K-T"]
        assert p.delay_ms_to_units(0.0) == p.bias
        assert p.delay_ms_to_units(1e9) == p.max_cost

    def test_validation(self):
        with pytest.raises(ValueError):
            DspfParams("x", bias=0)
        with pytest.raises(ValueError):
            DspfParams("x", bias=2, ms_per_unit=0.0)
