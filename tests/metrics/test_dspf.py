"""Unit tests for the D-SPF delay metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import DelayMetric, utilization_to_delay_s
from repro.metrics.params import DEFAULT_DSPF_PARAMS
from repro.topology import Network, line_type
from repro.units import MAX_ROUTING_UNITS


def make_link(type_name="56K-T", propagation_s=0.003):
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type(type_name), propagation_s)
    return link


def delay_at(link, utilization):
    return utilization_to_delay_s(
        utilization, link.bandwidth_bps, propagation_s=link.propagation_s
    )


def test_idle_cost_near_bias():
    metric = DelayMetric()
    link = make_link()
    assert metric.initial_cost(link) == pytest.approx(2, abs=1)


def test_cost_tracks_measured_delay_directly():
    """No filtering, no movement limits: the metric IS the delay."""
    metric = DelayMetric()
    link = make_link()
    state = metric.create_state(link)
    low = metric.measured_cost(link, state, delay_at(link, 0.1))
    high = metric.measured_cost(link, state, delay_at(link, 0.95))
    again_low = metric.measured_cost(link, state, delay_at(link, 0.1))
    assert high > 5 * low
    assert again_low == low  # full swing back: nothing damps it


def test_wide_range_56k():
    """A loaded 56 kb/s line can look ~20x (and worse) vs idle."""
    metric = DelayMetric()
    link = make_link()
    state = metric.create_state(link)
    idle = metric.measured_cost(link, state, delay_at(link, 0.0))
    loaded = metric.measured_cost(link, state, 0.256)  # 256 ms measured
    assert loaded >= 18 * idle


def test_wide_range_96k_vs_56k():
    """A saturated 9.6 kb/s line ~127x an idle 56 kb/s line."""
    metric = DelayMetric()
    slow = make_link("9.6K-T")
    fast = make_link("56K-T")
    state = metric.create_state(slow)
    saturated = metric.measured_cost(slow, state, delay_at(slow, 0.999))
    idle_fast = metric.initial_cost(fast)
    assert saturated / idle_fast >= 100


def test_cost_capped_at_8_bits():
    metric = DelayMetric()
    link = make_link()
    state = metric.create_state(link)
    assert metric.measured_cost(link, state, 1e6) == MAX_ROUTING_UNITS


def test_satellite_idle_cost_includes_propagation():
    metric = DelayMetric()
    sat = make_link("56K-S", propagation_s=-1.0)
    ter = make_link("56K-T")
    assert metric.initial_cost(sat) > 10 * metric.initial_cost(ter)


def test_idle_satellite_about_twice_idle_96():
    # "an idle 56 kb/s satellite line ... appearing about twice as
    # expensive (as an idle 9.6 kb/s line) with the delay metric"
    metric = DelayMetric()
    sat = make_link("56K-S", propagation_s=-1.0)
    slow = make_link("9.6K-T", propagation_s=0.060)
    ratio = metric.initial_cost(sat) / metric.initial_cost(slow)
    assert 1.5 <= ratio <= 3.5


def test_cost_never_below_idle_floor():
    metric = DelayMetric()
    link = make_link()
    state = metric.create_state(link)
    assert metric.measured_cost(link, state, 0.0) == metric.initial_cost(link)


def test_equilibrium_map_is_mm1():
    metric = DelayMetric()
    link = make_link()
    idle = metric.cost_at_utilization(link, 0.0)
    half = metric.cost_at_utilization(link, 0.5)
    # M/M/1: delay doubles at 50% utilization (plus propagation effects).
    assert half >= 1.5 * idle


def test_unknown_line_type_raises():
    from dataclasses import replace

    metric = DelayMetric()
    link = make_link()
    link.line_type = replace(link.line_type, name="T3")
    with pytest.raises(KeyError, match="T3"):
        metric.params_for(link)


def test_change_threshold_positive():
    metric = DelayMetric()
    assert metric.change_threshold(make_link()) > 0


def test_params_override():
    custom = DEFAULT_DSPF_PARAMS["56K-T"].__class__(
        line_type_name="56K-T", bias=5
    )
    metric = DelayMetric(params={"56K-T": custom})
    assert metric.params_for(make_link()).bias == 5


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.0, max_value=10.0))
def test_property_cost_in_valid_range(delay_s):
    metric = DelayMetric()
    link = make_link()
    state = metric.create_state(link)
    cost = metric.measured_cost(link, state, delay_s)
    assert metric.initial_cost(link) <= cost <= MAX_ROUTING_UNITS


@settings(max_examples=50, deadline=None)
@given(
    d1=st.floats(min_value=0.0, max_value=5.0),
    d2=st.floats(min_value=0.0, max_value=5.0),
)
def test_property_cost_monotone_in_delay(d1, d2):
    metric = DelayMetric()
    link = make_link()
    state = metric.create_state(link)
    c1 = metric.measured_cost(link, state, d1)
    c2 = metric.measured_cost(link, state, d2)
    if d1 <= d2:
        assert c1 <= c2
    else:
        assert c1 >= c2
