"""Unit tests for the min-hop baseline metric."""

import pytest

from repro.metrics import MinHopMetric
from repro.topology import Network, line_type


def make_link(type_name="56K-T"):
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type(type_name))
    return link


def test_constant_cost_regardless_of_load():
    metric = MinHopMetric()
    link = make_link()
    state = metric.create_state(link)
    assert metric.measured_cost(link, state, 0.0) == 30
    assert metric.measured_cost(link, state, 100.0) == 30


def test_same_cost_for_all_line_types():
    metric = MinHopMetric()
    costs = {
        metric.initial_cost(make_link(t))
        for t in ("56K-T", "9.6K-T", "56K-S")
    }
    assert costs == {30}


def test_equilibrium_map_is_flat():
    metric = MinHopMetric()
    link = make_link()
    assert metric.cost_at_utilization(link, 0.0) == \
        metric.cost_at_utilization(link, 0.999) == 30.0


def test_never_reports_load_changes():
    metric = MinHopMetric()
    assert metric.change_threshold(make_link()) > 10 ** 6


def test_custom_hop_cost():
    metric = MinHopMetric(hop_cost=1)
    assert metric.initial_cost(make_link()) == 1


def test_rejects_nonpositive_hop_cost():
    with pytest.raises(ValueError):
        MinHopMetric(hop_cost=0)


def test_hops_helper():
    metric = MinHopMetric()
    link = make_link()
    assert metric.hops(link, 90.0, 30.0) == 3.0
    with pytest.raises(ValueError):
        metric.hops(link, 90.0, 0.0)
