"""Unit and property tests for the M/M/1 transforms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.queueing import (
    MAX_MODEL_UTILIZATION,
    delay_to_utilization,
    service_time_s,
    utilization_to_delay_s,
)


def test_service_time_600_bits_at_56k():
    # 600 bits / 56 kb/s ~ 10.7 ms: the paper's average packet.
    assert service_time_s(56_000.0) == pytest.approx(0.0107, rel=0.01)


def test_service_time_rejects_bad_inputs():
    with pytest.raises(ValueError):
        service_time_s(0.0)
    with pytest.raises(ValueError):
        service_time_s(56_000.0, packet_bits=-1.0)


def test_zero_utilization_delay_is_service_plus_propagation():
    delay = utilization_to_delay_s(0.0, 56_000.0, propagation_s=0.010)
    assert delay == pytest.approx(600.0 / 56_000.0 + 0.010)


def test_delay_diverges_toward_saturation():
    d50 = utilization_to_delay_s(0.5, 56_000.0)
    d90 = utilization_to_delay_s(0.9, 56_000.0)
    d99 = utilization_to_delay_s(0.99, 56_000.0)
    assert d50 < d90 < d99
    assert d90 == pytest.approx(10 * d50 / 2, rel=0.01)  # S/(1-u) scaling


def test_delay_clamped_at_saturation():
    at_one = utilization_to_delay_s(1.0, 56_000.0)
    beyond = utilization_to_delay_s(5.0, 56_000.0)
    assert at_one == beyond  # both clamped to MAX_MODEL_UTILIZATION


def test_negative_utilization_rejected():
    with pytest.raises(ValueError):
        utilization_to_delay_s(-0.1, 56_000.0)


def test_delay_below_zero_load_maps_to_zero_utilization():
    service = service_time_s(56_000.0)
    assert delay_to_utilization(service * 0.5, 56_000.0) == 0.0
    assert delay_to_utilization(service, 56_000.0) == 0.0


def test_known_inversion_points():
    # delay = 2S  ->  u = 0.5
    service = service_time_s(56_000.0)
    assert delay_to_utilization(2 * service, 56_000.0) == pytest.approx(0.5)
    # delay = 4S  ->  u = 0.75 (the paper's Figure-7 discussion point)
    assert delay_to_utilization(4 * service, 56_000.0) == pytest.approx(0.75)


def test_propagation_is_subtracted_before_inversion():
    service = service_time_s(56_000.0)
    u = delay_to_utilization(
        2 * service + 0.260, 56_000.0, propagation_s=0.260
    )
    assert u == pytest.approx(0.5)


@given(st.floats(min_value=0.0, max_value=0.99))
def test_roundtrip_utilization_delay_utilization(u):
    bandwidth = 56_000.0
    delay = utilization_to_delay_s(u, bandwidth, propagation_s=0.015)
    back = delay_to_utilization(delay, bandwidth, propagation_s=0.015)
    assert back == pytest.approx(u, abs=1e-9)


@given(
    st.floats(min_value=0.001, max_value=10.0),
    st.floats(min_value=1_000.0, max_value=10_000_000.0),
)
def test_inversion_always_in_model_range(delay, bandwidth):
    u = delay_to_utilization(delay, bandwidth)
    assert 0.0 <= u <= MAX_MODEL_UTILIZATION


@given(st.floats(min_value=0.0, max_value=5.0))
def test_delay_monotone_in_utilization(u):
    bandwidth = 9_600.0
    lower = utilization_to_delay_s(u, bandwidth)
    higher = utilization_to_delay_s(u + 0.1, bandwidth)
    assert higher >= lower
