"""Unit and property tests for the HN-SPF metric pipeline (Figure 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import HopNormalizedMetric, utilization_to_delay_s
from repro.metrics.params import DEFAULT_HNSPF_PARAMS
from repro.topology import Network, line_type


def make_link(type_name="56K-T", propagation_s=-1.0):
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type(type_name), propagation_s)
    return link


def delay_at(link, utilization):
    """The measured delay an M/M/1 link would show at this utilization."""
    return utilization_to_delay_s(
        utilization, link.bandwidth_bps, propagation_s=link.propagation_s
    )


def settle(metric, link, state, utilization, periods=40):
    """Feed a constant utilization until the reported cost stabilizes."""
    cost = state.last_reported
    for _ in range(periods):
        cost = metric.measured_cost(link, state, delay_at(link, utilization))
    return cost


class TestEaseIn:
    def test_new_link_starts_at_max_cost(self):
        metric = HopNormalizedMetric()
        link = make_link()
        assert metric.initial_cost(link) == 90
        state = metric.create_state(link)
        assert state.last_reported == 90

    def test_ease_in_descends_by_max_down_per_period(self):
        metric = HopNormalizedMetric()
        link = make_link()
        state = metric.create_state(link)
        idle = delay_at(link, 0.0)
        costs = [metric.measured_cost(link, state, idle) for _ in range(6)]
        params = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert costs[0] == 90 - params.max_down
        deltas = [a - b for a, b in zip(costs, costs[1:])]
        assert all(0 <= d <= params.max_down for d in deltas)
        assert costs[-1] == 30

    def test_ease_in_can_be_disabled(self):
        metric = HopNormalizedMetric(ease_in=False)
        link = make_link()
        assert metric.initial_cost(link) == 30


class TestSteadyState:
    def test_idle_link_settles_at_min(self):
        metric = HopNormalizedMetric()
        link = make_link()
        state = metric.create_state(link)
        assert settle(metric, link, state, 0.0) == 30

    def test_cost_flat_below_threshold(self):
        metric = HopNormalizedMetric()
        link = make_link()
        for u in (0.1, 0.3, 0.49):
            state = metric.create_state(link)
            assert settle(metric, link, state, u) == 30, u

    def test_cost_rises_above_threshold(self):
        metric = HopNormalizedMetric()
        link = make_link()
        state = metric.create_state(link)
        at_75 = settle(metric, link, state, 0.75)
        assert at_75 == pytest.approx(60, abs=2)

    def test_saturated_link_settles_at_max(self):
        metric = HopNormalizedMetric()
        link = make_link()
        state = metric.create_state(link)
        assert settle(metric, link, state, 0.999) >= 88

    def test_satellite_idle_costs_double(self):
        metric = HopNormalizedMetric()
        sat = make_link("56K-S")
        state = metric.create_state(sat)
        assert settle(metric, sat, state, 0.0) == 60

    def test_satellite_and_terrestrial_equal_when_saturated(self):
        metric = HopNormalizedMetric()
        sat, ter = make_link("56K-S"), make_link("56K-T")
        sat_cost = settle(metric, sat, metric.create_state(sat), 0.999)
        ter_cost = settle(metric, ter, metric.create_state(ter), 0.999)
        assert abs(sat_cost - ter_cost) <= 2


class TestMovementLimits:
    def test_upward_jump_is_rate_limited(self):
        metric = HopNormalizedMetric(ease_in=False)
        link = make_link()
        state = metric.create_state(link)
        settle(metric, link, state, 0.0)
        cost = metric.measured_cost(link, state, delay_at(link, 0.999))
        params = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert cost <= 30 + params.max_up

    def test_downward_fall_is_rate_limited(self):
        metric = HopNormalizedMetric()
        link = make_link()
        state = metric.create_state(link)
        settle(metric, link, state, 0.999)
        before = state.last_reported
        cost = metric.measured_cost(link, state, delay_at(link, 0.0))
        params = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert cost >= before - params.max_down

    def test_march_up_asymmetry(self):
        """A cost oscillating at full amplitude gains one unit per cycle."""
        params = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert params.max_up - params.max_down == 1

    def test_pinned_oscillation_marches_up_one_unit_per_cycle(self):
        """The epsilon-problem counter: feed alternating saturation/idle
        so the raw cost swings past both movement limits; the reported
        cost then climbs one unit per full cycle (max_up - max_down),
        spreading the values of identically-loaded lines over time."""
        metric = HopNormalizedMetric(ease_in=False)
        link = make_link()
        state = metric.create_state(link)
        settle(metric, link, state, 0.0)
        lows, highs = [], []
        for cycle in range(12):
            highs.append(
                metric.measured_cost(link, state, delay_at(link, 0.999))
            )
            lows.append(
                metric.measured_cost(link, state, delay_at(link, 0.0))
            )
        # Skip the start-up transient, then demand the +1 march...
        for earlier, later in zip(lows[2:5], lows[3:6]):
            assert later - earlier == 1
        for earlier, later in zip(highs[2:5], highs[3:6]):
            assert later - earlier == 1
        # ...which stops once the swing reaches the raw-cost range (the
        # march only spreads costs while the limits are pinned).
        assert lows[-1] == lows[-2]
        assert highs[-1] == highs[-2]

    def test_symmetric_limits_do_not_march(self):
        """Ablation: with max_down == max_up the same oscillation goes
        nowhere -- the spreading mechanism is exactly the asymmetry."""
        from dataclasses import replace

        params = {"56K-T": replace(DEFAULT_HNSPF_PARAMS["56K-T"],
                                   max_down=17)}
        metric = HopNormalizedMetric(ease_in=False, params=params)
        link = make_link()
        state = metric.create_state(link)
        settle(metric, link, state, 0.0)
        lows = []
        for cycle in range(12):
            metric.measured_cost(link, state, delay_at(link, 0.999))
            lows.append(
                metric.measured_cost(link, state, delay_at(link, 0.0))
            )
        assert len(set(lows[4:10])) == 1  # flat: no march

    def test_limits_can_be_disabled_for_ablation(self):
        """Same overload ramp, with and without movement limits.

        At period 2 the averaged utilization (~0.75) maps to raw cost ~60;
        the limited metric can only have reached 30 + 17 = 47 by then.
        """
        results = {}
        for limited in (True, False):
            metric = HopNormalizedMetric(
                ease_in=False, limit_movement=limited
            )
            link = make_link()
            state = metric.create_state(link)
            settle(metric, link, state, 0.0)
            metric.measured_cost(link, state, delay_at(link, 0.999))
            results[limited] = metric.measured_cost(
                link, state, delay_at(link, 0.999)
            )
        params = DEFAULT_HNSPF_PARAMS["56K-T"]
        assert results[True] == 30 + params.max_up
        assert results[False] > results[True]


class TestAveragingFilter:
    def test_single_spike_is_halved(self):
        metric = HopNormalizedMetric(ease_in=False)
        link = make_link()
        state = metric.create_state(link)
        settle(metric, link, state, 0.0)
        metric.measured_cost(link, state, delay_at(link, 1.0))
        # avg utilization = 0.5 -> raw cost exactly at threshold knee = 30
        assert state.last_average == pytest.approx(0.5, abs=0.01)

    def test_custom_smoothing(self):
        metric = HopNormalizedMetric(ease_in=False, smoothing=1.0)
        link = make_link()
        state = metric.create_state(link)
        metric.measured_cost(link, state, delay_at(link, 0.8))
        assert state.last_average == pytest.approx(0.8, abs=0.01)

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ValueError):
            HopNormalizedMetric(smoothing=0.0)
        with pytest.raises(ValueError):
            HopNormalizedMetric(smoothing=1.5)


class TestBoundsAndThresholds:
    def test_change_threshold_is_line_type_min_change(self):
        metric = HopNormalizedMetric()
        assert metric.change_threshold(make_link()) == 13
        assert metric.change_threshold(make_link("9.6K-T")) == 33

    def test_long_propagation_bumps_lower_bound(self):
        metric = HopNormalizedMetric()
        nominal = make_link("56K-T")
        long_haul = make_link("56K-T", propagation_s=0.250)
        assert metric.min_cost_for(long_haul) > metric.min_cost_for(nominal)
        assert metric.min_cost_for(long_haul) <= 90

    def test_unknown_line_type_raises(self):
        from dataclasses import replace

        metric = HopNormalizedMetric()
        link = make_link()
        weird = replace(link.line_type, name="OC-48")
        link.line_type = weird
        with pytest.raises(KeyError, match="OC-48"):
            metric.measured_cost(link, metric.create_state(make_link()), 0.01)

    def test_equilibrium_map_matches_params(self):
        metric = HopNormalizedMetric()
        link = make_link()
        assert metric.cost_at_utilization(link, 0.0) == 30.0
        assert metric.cost_at_utilization(link, 1.0) == 90.0
        assert metric.idle_cost(link) == 30.0


@settings(max_examples=60, deadline=None)
@given(
    utilizations=st.lists(
        st.floats(min_value=0.0, max_value=0.999), min_size=1, max_size=30
    ),
    type_name=st.sampled_from(["56K-T", "56K-S", "9.6K-T", "9.6K-S"]),
)
def test_property_cost_always_within_bounds(utilizations, type_name):
    """Invariant: every reported cost lies in [min, max] for its type."""
    metric = HopNormalizedMetric()
    link = make_link(type_name)
    state = metric.create_state(link)
    params = DEFAULT_HNSPF_PARAMS[type_name]
    for u in utilizations:
        cost = metric.measured_cost(link, state, delay_at(link, u))
        assert params.min_cost <= cost <= params.max_cost


@settings(max_examples=60, deadline=None)
@given(
    utilizations=st.lists(
        st.floats(min_value=0.0, max_value=0.999), min_size=2, max_size=30
    ),
)
def test_property_movement_always_limited(utilizations):
    """Invariant: successive reports never move more than the limits."""
    metric = HopNormalizedMetric()
    link = make_link()
    state = metric.create_state(link)
    params = DEFAULT_HNSPF_PARAMS["56K-T"]
    previous = state.last_reported
    for u in utilizations:
        cost = metric.measured_cost(link, state, delay_at(link, u))
        assert -params.max_down <= cost - previous <= params.max_up
        previous = cost


@settings(max_examples=40, deadline=None)
@given(u=st.floats(min_value=0.0, max_value=0.999))
def test_property_equilibrium_map_monotone(u):
    metric = HopNormalizedMetric()
    link = make_link()
    lower = metric.cost_at_utilization(link, u)
    higher = metric.cost_at_utilization(link, min(u + 0.05, 1.0))
    assert higher >= lower
