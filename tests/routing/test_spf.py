"""Unit tests for full SPF computation and queries."""

import pytest

from repro.routing import CostTable, SpfTree, UNREACHABLE
from repro.topology import Network, build_ring_network, line_type


def square_network():
    """A 4-cycle A-B-C-D with a diagonal A-C."""
    net = Network("square")
    a, b, c, d = (net.add_node(x).node_id for x in "ABCD")
    net.add_circuit(a, b, line_type("56K-T"))  # links 0,1
    net.add_circuit(b, c, line_type("56K-T"))  # links 2,3
    net.add_circuit(c, d, line_type("56K-T"))  # links 4,5
    net.add_circuit(d, a, line_type("56K-T"))  # links 6,7
    net.add_circuit(a, c, line_type("56K-T"))  # links 8,9
    return net


def test_distances_on_uniform_square():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    assert tree.dist[0] == 0.0
    assert tree.dist[1] == 1.0
    assert tree.dist[2] == 1.0  # via the diagonal
    assert tree.dist[3] == 1.0


def test_next_hop_links_leave_root():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    for dest in (1, 2, 3):
        link = net.link(tree.next_hop_link(dest))
        assert link.src == 0


def test_next_hop_none_for_root():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    assert tree.next_hop_link(0) is None


def test_costs_reroute_around_expensive_link():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[8] = 10.0  # diagonal A->C now expensive
    tree = SpfTree(net, 0, costs)
    assert tree.dist[2] == 2.0
    assert tree.path_nodes(2) in ([0, 1, 2], [0, 3, 2])


def test_path_links_and_nodes_consistent():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    links = tree.path_links(2)
    nodes = tree.path_nodes(2)
    assert len(links) == len(nodes) - 1
    for link_id, (src, dst) in zip(links, zip(nodes, nodes[1:])):
        link = net.link(link_id)
        assert (link.src, link.dst) == (src, dst)


def test_hop_count():
    net = build_ring_network(6)
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    assert tree.hop_count(0) == 0
    assert tree.hop_count(1) == 1
    assert tree.hop_count(3) == 3  # opposite side of the ring


def test_uses_link():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[8] = 10.0
    tree = SpfTree(net, 0, costs)
    assert not tree.uses_link(2, 8)


def test_down_link_is_unreachable_cost():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    for link_id in (0, 7, 8):  # every link out of A
        costs[link_id] = UNREACHABLE
    tree = SpfTree(net, 0, costs)
    for dest in (1, 2, 3):
        assert not tree.reachable(dest)
        assert tree.next_hop_link(dest) is None
        assert tree.path_links(dest) == []
        assert tree.path_nodes(dest) == []


def test_unknown_root_rejected():
    net = square_network()
    with pytest.raises(ValueError):
        SpfTree(net, 99, CostTable.uniform(net, 1.0))


def test_negative_cost_rejected():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    with pytest.raises(ValueError):
        costs[0] = -1.0


def test_shortest_paths_are_hereditary():
    """Every subpath of a shortest path is a shortest path (the property
    destination-based forwarding depends on)."""
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[2] = 0.5
    costs[8] = 1.8
    tree = SpfTree(net, 0, costs)
    for dest in net.nodes:
        nodes = tree.path_nodes(dest)
        for intermediate in nodes[1:-1]:
            prefix_len = nodes.index(intermediate)
            assert tree.path_nodes(intermediate) == nodes[:prefix_len + 1]


def test_stats_count_full_computations():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    assert tree.stats.full_computations == 1
    tree.recompute()
    assert tree.stats.full_computations == 2
    snapshot = tree.stats.reset()
    assert snapshot.full_computations == 2
    assert tree.stats.full_computations == 0


def test_cost_table_from_metric():
    from repro.metrics import HopNormalizedMetric

    net = square_network()
    costs = CostTable.from_metric(net, HopNormalizedMetric())
    assert all(c == 30.0 for c in costs.costs)


def test_tree_against_networkx():
    """Cross-check distances with networkx's Dijkstra on a bigger graph."""
    import networkx as nx

    from repro.topology import build_arpanet_1987

    net = build_arpanet_1987()
    costs = CostTable([(i % 7) + 1.0 for i in range(len(net.links))])
    tree = SpfTree(net, 0, costs)

    graph = nx.DiGraph()
    for link in net.links:
        cost = costs[link.link_id]
        if (not graph.has_edge(link.src, link.dst)
                or graph[link.src][link.dst]["weight"] > cost):
            graph.add_edge(link.src, link.dst, weight=cost)
    expected = nx.single_source_dijkstra_path_length(graph, 0)
    for node in net.nodes:
        assert tree.dist[node] == pytest.approx(expected[node])
