"""Unit tests for the 1969 distributed Bellman-Ford baseline."""

import math

import pytest

from repro.routing import BellmanFordNode, has_routing_loop, queue_length_metric
from repro.topology import build_ring_network, build_string_network


def converge(network, metrics_per_node, rounds=None):
    """Run synchronous exchange rounds until convergence.

    ``metrics_per_node[node]`` maps neighbour -> link metric.
    """
    nodes = {n: BellmanFordNode(network, n) for n in network.nodes}
    rounds = rounds or 2 * len(network.nodes)
    for _ in range(rounds):
        vectors = {n: node.snapshot() for n, node in nodes.items()}
        changed = False
        for n, node in nodes.items():
            for neighbour in network.neighbors(n):
                node.receive_vector(neighbour, vectors[neighbour])
            if node.recompute(metrics_per_node[n]):
                changed = True
        if not changed:
            break
    return nodes


def uniform_metrics(network, value=1.0):
    return {
        n: {nb: value for nb in network.neighbors(n)}
        for n in network.nodes
    }


def test_queue_length_metric():
    assert queue_length_metric(0) == 4.0
    assert queue_length_metric(10) == 14.0
    with pytest.raises(ValueError):
        queue_length_metric(-1)


def test_converges_to_shortest_paths_on_string():
    net = build_string_network(5)
    nodes = converge(net, uniform_metrics(net))
    assert nodes[0].table.distance[4] == pytest.approx(4.0)
    assert nodes[0].next_hop(4) == 1


def test_converges_on_ring_both_ways():
    net = build_ring_network(6)
    nodes = converge(net, uniform_metrics(net))
    assert nodes[0].table.distance[3] == pytest.approx(3.0)
    assert nodes[0].table.distance[5] == pytest.approx(1.0)
    assert nodes[0].next_hop(5) == 5


def test_self_distance_zero():
    net = build_ring_network(4)
    nodes = converge(net, uniform_metrics(net))
    for n, node in nodes.items():
        assert node.table.distance[n] == 0.0
        assert node.next_hop(n) is None


def test_rejects_own_vector():
    net = build_ring_network(4)
    node = BellmanFordNode(net, 0)
    with pytest.raises(ValueError):
        node.receive_vector(0, {})


def test_no_loop_after_convergence():
    net = build_ring_network(6)
    nodes = converge(net, uniform_metrics(net))
    for dest in net.nodes:
        looped, _cycle = has_routing_loop(nodes, dest)
        assert not looped


def test_volatile_metric_causes_transient_loops():
    """The paper's complaint: with a rapidly-changing metric and stale
    neighbour tables, forwarding loops form."""
    net = build_ring_network(4)
    metrics = uniform_metrics(net)
    nodes = converge(net, metrics)

    # Queue spike: node 1's link toward 2 suddenly looks terrible, and
    # node 1 re-minimizes before its neighbours hear about anything.
    metrics[1][2] = queue_length_metric(400)
    metrics[1][0] = queue_length_metric(0)
    nodes[1].recompute(metrics[1])
    # Node 1 now routes to 2 the long way (via 0) using 0's *stale* table,
    # while 0 still routes to 2 via 1: a loop.
    looped, cycle = has_routing_loop(nodes, dest=2)
    assert looped
    assert set(cycle) == {0, 1}


def test_unreachable_when_partitioned():
    net = build_string_network(3)
    metrics = uniform_metrics(net)
    # Sever 0-1 in both directions by removing the neighbour metrics.
    del metrics[0][1]
    del metrics[1][0]
    nodes = converge(net, metrics)
    assert math.isinf(nodes[0].table.distance[2])
    assert nodes[0].next_hop(2) is None


def test_counting_to_infinity_is_bounded():
    """Distances blow up after a partition but are cut off at the
    INFINITY_THRESHOLD rather than counting forever."""
    net = build_string_network(3)
    metrics = uniform_metrics(net)
    nodes = converge(net, metrics)
    assert nodes[2].table.distance[0] == pytest.approx(2.0)
    # Partition node 0 away; keep exchanging stale vectors 1 <-> 2.
    del metrics[1][0]
    for _ in range(3000):
        vectors = {n: node.snapshot() for n, node in nodes.items()}
        for n in (1, 2):
            for neighbour in net.neighbors(n):
                if neighbour in metrics[n]:
                    nodes[n].receive_vector(neighbour, vectors[neighbour])
            nodes[n].recompute(metrics[n])
    assert math.isinf(nodes[2].table.distance[0])
