"""Batched multi-link SPF repair: ``SpfTree.update_costs``.

The batched pass promises the *bit-identical* shortest-path tree after
absorbing an arbitrary mix of cost increases and decreases in one scan:
every repair path resolves equal-cost ties with the canonical
smallest-link-id rule, making the tree a pure function of the cost
table.  The property test drives it with random topologies and random
deltas and checks distances *and* parent pointers against a
from-scratch Dijkstra.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.routing.spf import CostTable, SpfTree
from repro.topology.generators import build_random_network, build_ring_network


def _tree(network, costs, root=0):
    return SpfTree(network, root, CostTable(list(costs)))


def _assert_valid_tree(tree, network, costs):
    """Structural invariants: every parent pointer is consistent."""
    for node, link_id in tree.parent_link.items():
        if link_id is None:
            assert node == tree.root or math.isinf(tree.dist[node])
            continue
        link = network.links[link_id]
        assert link.dst == node
        assert tree.dist[node] == tree.dist[link.src] + costs[link_id]


# ----------------------------------------------------------------------
# Deterministic cases
# ----------------------------------------------------------------------
def test_empty_batch_is_a_no_op():
    network = build_ring_network(5)
    tree = _tree(network, [1.0] * len(network.links))
    before = dict(tree.dist)
    assert tree.update_costs([]) is False
    assert tree.dist == before
    assert tree.stats.batched_passes == 0


def test_unchanged_costs_are_a_no_op():
    network = build_ring_network(5)
    tree = _tree(network, [1.0] * len(network.links))
    assert tree.update_costs([(0, 1.0), (3, 1.0)]) is False
    assert tree.stats.no_op_updates == 1


def test_last_write_wins_for_duplicate_links():
    network = build_ring_network(4)
    tree = _tree(network, [1.0] * len(network.links))
    assert tree.update_costs([(0, 9.0), (0, 1.0)]) is False
    assert tree.costs[0] == 1.0


def test_mixed_batch_matches_recompute():
    network = build_random_network(10, extra_circuits=4, seed=7)
    costs = [float(c) for c in range(2, 2 + len(network.links))]
    tree = _tree(network, costs)
    # Guarantee real tree surgery: push one in-use (tree) link way up,
    # pull two others way down, bump one non-tree link.
    tree_link = next(
        link_id for link_id in tree.parent_link.values() if link_id is not None
    )
    changes = [(tree_link, 50.0), (1, 1.0), (5, 30.0), (8, 1.0)]
    assert tree.update_costs(changes) is True
    for link_id, cost in changes:
        costs[link_id] = cost
    fresh = _tree(network, costs)
    assert tree.dist == fresh.dist
    assert tree.parent_link == fresh.parent_link
    _assert_valid_tree(tree, network, costs)
    assert tree.stats.batched_passes == 1
    assert tree.stats.batched_changes == len(changes)


# ----------------------------------------------------------------------
# Property: batched repair == full recompute, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_update_costs_equals_recompute(data):
    nodes = data.draw(st.integers(min_value=3, max_value=12), label="nodes")
    extra = data.draw(st.integers(min_value=0, max_value=6), label="extra")
    topo_seed = data.draw(st.integers(min_value=0, max_value=999),
                          label="topo_seed")
    network = build_random_network(nodes, extra_circuits=extra,
                                   seed=topo_seed)
    link_count = len(network.links)

    cost_value = st.integers(min_value=1, max_value=20).map(float)
    costs = data.draw(
        st.lists(cost_value, min_size=link_count, max_size=link_count),
        label="costs",
    )
    changes = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=link_count - 1),
                cost_value,
            ),
            max_size=link_count,
        ),
        label="changes",
    )

    tree = _tree(network, costs)
    tree.update_costs(changes)

    final = list(costs)
    for link_id, cost in changes:
        final[link_id] = cost
    fresh = _tree(network, final)

    assert tree.dist == fresh.dist
    assert tree.parent_link == fresh.parent_link
    assert list(tree.costs.costs) == final
    _assert_valid_tree(tree, network, final)
