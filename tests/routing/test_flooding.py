"""Unit tests for the flooding protocol logic."""

import pytest

from repro.routing import FloodingState, RoutingUpdate
from repro.topology import build_ring_network


@pytest.fixture
def ring():
    return build_ring_network(4)


def test_originate_increments_sequence(ring):
    state = FloodingState(ring, 0)
    own_link = ring.out_links(0)[0].link_id
    first = state.originate(own_link, 30)
    second = state.originate(own_link, 47)
    assert first.sequence == 1
    assert second.sequence == 2
    assert first.key() == second.key()


def test_originate_rejects_foreign_link(ring):
    state = FloodingState(ring, 0)
    foreign = ring.out_links(1)[0].link_id
    with pytest.raises(ValueError):
        state.originate(foreign, 30)


def test_accept_new_then_reject_duplicate(ring):
    sender = FloodingState(ring, 0)
    receiver = FloodingState(ring, 1)
    update = sender.originate(ring.out_links(0)[0].link_id, 42)
    assert receiver.accept(update)
    assert not receiver.accept(update)
    assert receiver.stats.accepted == 1
    assert receiver.stats.duplicates == 1


def test_stale_sequence_rejected(ring):
    sender = FloodingState(ring, 0)
    receiver = FloodingState(ring, 1)
    link = ring.out_links(0)[0].link_id
    old = sender.originate(link, 42)
    new = sender.originate(link, 60)
    assert receiver.accept(new)
    assert not receiver.accept(old)


def test_originator_ignores_reflected_copy(ring):
    sender = FloodingState(ring, 0)
    update = sender.originate(ring.out_links(0)[0].link_id, 42)
    assert not sender.accept(update)


def test_sequence_spaces_independent_per_link(ring):
    sender = FloodingState(ring, 0)
    links = [l.link_id for l in ring.out_links(0)]
    u1 = sender.originate(links[0], 42)
    u2 = sender.originate(links[1], 42)
    assert u1.sequence == u2.sequence == 1
    assert u1.key() != u2.key()


def test_forward_links_exclude_arrival_reverse(ring):
    state = FloodingState(ring, 1)
    # Update arrived on the link 0 -> 1; don't send it back on 1 -> 0.
    arrival = ring.links_between(0, 1)[0].link_id
    back = ring.link(arrival).reverse_id
    forwards = state.forward_links(arrived_on=arrival)
    assert back not in forwards
    assert len(forwards) == len(ring.out_links(1)) - 1


def test_forward_links_all_when_originating(ring):
    state = FloodingState(ring, 1)
    forwards = state.forward_links(arrived_on=None)
    assert len(forwards) == len(ring.out_links(1))


def test_flood_reaches_every_node_once(ring):
    """Simulate a full synchronous flood; every node accepts exactly once."""
    states = {n: FloodingState(ring, n) for n in ring.nodes}
    update = states[0].originate(ring.out_links(0)[0].link_id, 55)
    frontier = [(update, link_id) for link_id in
                states[0].forward_links(None)]
    accepted = {0}
    while frontier:
        update_msg, via = frontier.pop(0)
        receiver = ring.link(via).dst
        if states[receiver].accept(update_msg):
            accepted.add(receiver)
            frontier.extend(
                (update_msg, out)
                for out in states[receiver].forward_links(arrived_on=via)
            )
    assert accepted == set(ring.nodes)
    for node, state in states.items():
        if node != 0:
            assert state.stats.accepted == 1


def test_update_is_immutable():
    update = RoutingUpdate(origin=0, link_id=1, cost=30, sequence=1)
    with pytest.raises(AttributeError):
        update.cost = 99
