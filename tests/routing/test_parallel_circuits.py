"""Multigraph behaviour: parallel circuits between the same PSN pair."""

from repro.metrics import HopNormalizedMetric
from repro.routing import CostTable, MultipathRouter, SpfTree
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import Network, line_type
from repro.traffic import TrafficMatrix


def dual_circuit_network():
    net = Network("dual")
    a = net.add_node("A").node_id
    b = net.add_node("B").node_id
    net.add_circuit(a, b, line_type("56K-T"), propagation_s=0.002)
    net.add_circuit(a, b, line_type("56K-T"), propagation_s=0.002)
    return net, a, b


def test_links_between_returns_both():
    net, a, b = dual_circuit_network()
    assert len(net.links_between(a, b)) == 2
    assert net.neighbors(a) == [b]  # one neighbour, two circuits


def test_spf_uses_cheaper_parallel_link():
    net, a, b = dual_circuit_network()
    costs = CostTable.uniform(net, 30.0)
    second = net.links_between(a, b)[1].link_id
    costs[second] = 20.0
    tree = SpfTree(net, a, costs)
    assert tree.next_hop_link(b) == second
    assert tree.dist[b] == 20.0


def test_spf_survives_one_parallel_link_failing():
    net, a, b = dual_circuit_network()
    tree = SpfTree(net, a, CostTable.uniform(net, 30.0))
    used = tree.next_hop_link(b)
    tree.update_cost(used, float("inf"))
    assert tree.reachable(b)
    assert tree.next_hop_link(b) != used


def test_multipath_splits_across_parallel_circuits():
    net, a, b = dual_circuit_network()
    router = MultipathRouter(net, a, CostTable.uniform(net, 30.0),
                             mode="packet")
    assert router.path_diversity(b) == 2
    picks = {router.next_hop_link(b) for _ in range(4)}
    assert len(picks) == 2


def test_single_path_sim_caps_at_one_circuit():
    """Single-path forwarding cannot use the second circuit: a 90 kb/s
    flow over two 56 kb/s circuits delivers only ~56 kb/s."""
    net, a, b = dual_circuit_network()
    traffic = TrafficMatrix.hot_pairs({(a, b): 90_000.0})
    sim = NetworkSimulation(
        net, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=200.0, warmup_s=40.0, seed=2),
    )
    report = sim.run()
    assert report.internode_traffic_kbps < 60.0


def test_multipath_sim_uses_both_circuits():
    net, a, b = dual_circuit_network()
    traffic = TrafficMatrix.hot_pairs({(a, b): 90_000.0})
    sim = NetworkSimulation(
        net, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=200.0, warmup_s=40.0, seed=2,
                       multipath="packet"),
    )
    report = sim.run()
    assert report.internode_traffic_kbps > 80.0
    assert report.delivery_ratio > 0.95
