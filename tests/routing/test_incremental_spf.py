"""Incremental SPF: unit tests for each case plus the equivalence property.

The load-bearing guarantee is that a tree maintained through any sequence
of single-link cost changes has exactly the same distances as a tree built
from scratch on the final costs.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import CostTable, SpfTree, UNREACHABLE
from repro.topology import Network, build_random_network, line_type


def square_network():
    net = Network("square")
    a, b, c, d = (net.add_node(x).node_id for x in "ABCD")
    net.add_circuit(a, b, line_type("56K-T"))  # 0,1
    net.add_circuit(b, c, line_type("56K-T"))  # 2,3
    net.add_circuit(c, d, line_type("56K-T"))  # 4,5
    net.add_circuit(d, a, line_type("56K-T"))  # 6,7
    net.add_circuit(a, c, line_type("56K-T"))  # 8,9
    return net


def assert_matches_full(tree):
    fresh = SpfTree(tree.network, tree.root, tree.costs.copy())
    for node in tree.network.nodes:
        assert tree.dist[node] == pytest.approx(fresh.dist[node]), node


def test_increase_on_non_tree_link_is_noop():
    """The paper's explicit example: increase off-tree => no recompute."""
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[8] = 5.0  # diagonal not in tree
    tree = SpfTree(net, 0, costs)
    scanned_before = tree.stats.nodes_scanned
    tree.update_cost(8, 7.0)
    assert tree.stats.no_op_updates == 1
    assert tree.stats.nodes_scanned == scanned_before
    assert_matches_full(tree)


def test_equal_cost_update_is_noop():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    tree.update_cost(0, 1.0)
    assert tree.stats.no_op_updates == 1


def test_decrease_pulls_route_onto_link():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[8] = 5.0
    tree = SpfTree(net, 0, costs)
    assert tree.dist[2] == 2.0
    tree.update_cost(8, 0.5)
    assert tree.dist[2] == 0.5
    assert tree.parent_link[2] == 8
    assert_matches_full(tree)


def test_decrease_propagates_downstream():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[8] = 5.0
    costs[4] = 5.0  # C->D expensive; D reached via A->D
    tree = SpfTree(net, 0, costs)
    tree.update_cost(8, 0.1)  # now A->C cheap; C at 0.1
    # D best is still direct (1.0) vs via C (0.1 + 5.0).
    assert tree.dist[3] == 1.0
    tree.update_cost(4, 0.2)  # now A->C->D = 0.3
    assert tree.dist[3] == pytest.approx(0.3)
    assert_matches_full(tree)


def test_increase_on_tree_link_reattaches_subtree():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    costs[8] = 0.2  # A->C in tree; D hangs via A->D
    tree = SpfTree(net, 0, costs)
    assert tree.parent_link[2] == 8
    tree.update_cost(8, 10.0)
    assert tree.dist[2] == 2.0  # re-attached via B or D
    assert tree.parent_link[2] != 8
    assert_matches_full(tree)


def test_link_failure_via_infinite_cost():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    tree.update_cost(0, UNREACHABLE)  # A->B down
    assert tree.dist[1] == 2.0  # via C or D
    assert_matches_full(tree)


def test_total_partition_and_recovery():
    net = square_network()
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    for link_id in (0, 7, 8):
        tree.update_cost(link_id, UNREACHABLE)
    assert all(not tree.reachable(d) for d in (1, 2, 3))
    tree.update_cost(0, 1.0)
    assert tree.reachable(3)
    assert tree.dist[3] == 3.0
    assert_matches_full(tree)


def test_decrease_from_unreachable_source_is_noop():
    net = square_network()
    costs = CostTable.uniform(net, 1.0)
    for link_id in (0, 7, 8):
        costs[link_id] = UNREACHABLE
    tree = SpfTree(net, 0, costs)
    # B is unreachable; lowering B->C's cost changes nothing for root A.
    tree.update_cost(2, 0.1)
    assert not tree.reachable(2)
    assert_matches_full(tree)


def test_incremental_cheaper_than_full_on_arpanet():
    """Off-tree increases must do no scanning work at all."""
    from repro.topology import build_arpanet_1987

    net = build_arpanet_1987()
    tree = SpfTree(net, 0, CostTable.uniform(net, 30.0))
    off_tree = [
        l.link_id for l in net.links
        if tree.parent_link.get(l.dst) != l.link_id
    ]
    scanned_before = tree.stats.nodes_scanned
    for link_id in off_tree[:20]:
        tree.update_cost(link_id, 31.0)
    assert tree.stats.nodes_scanned == scanned_before
    assert_matches_full(tree)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=200),
    n=st.integers(min_value=3, max_value=15),
    extra=st.integers(min_value=0, max_value=10),
    changes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10 ** 6),
            st.one_of(
                st.floats(min_value=0.1, max_value=100.0),
                st.just(UNREACHABLE),
            ),
        ),
        min_size=1,
        max_size=12,
    ),
    root_pick=st.integers(min_value=0, max_value=10 ** 6),
)
def test_property_incremental_equals_full(seed, n, extra, changes, root_pick):
    """Any sequence of cost changes: incremental == from-scratch."""
    net = build_random_network(n, extra_circuits=extra, seed=seed)
    root = root_pick % n
    tree = SpfTree(net, root, CostTable.uniform(net, 1.0))
    for raw_link, cost in changes:
        link_id = raw_link % len(net.links)
        tree.update_cost(link_id, cost)
        fresh = SpfTree(net, root, tree.costs.copy())
        for node in net.nodes:
            if math.isinf(fresh.dist[node]):
                assert math.isinf(tree.dist[node])
            else:
                assert tree.dist[node] == pytest.approx(fresh.dist[node])


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100),
    changes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10 ** 6),
            st.integers(min_value=30, max_value=90),
        ),
        min_size=1,
        max_size=20,
    ),
)
def test_property_next_hops_stay_consistent(seed, changes):
    """After any update burst, following next hops always reaches the
    destination in at most |V| steps (no forwarding loops with a
    consistent cost view)."""
    net = build_random_network(8, extra_circuits=6, seed=seed)
    trees = {
        node: SpfTree(net, node, CostTable.uniform(net, 30.0))
        for node in net.nodes
    }
    for raw_link, cost in changes:
        link_id = raw_link % len(net.links)
        for tree in trees.values():
            tree.update_cost(link_id, float(cost))
    for source in net.nodes:
        for dest in net.nodes:
            node = source
            for _hop in range(len(net.nodes) + 1):
                if node == dest:
                    break
                link_id = trees[node].next_hop_link(dest)
                assert link_id is not None
                node = net.link(link_id).dst
            assert node == dest


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=200),
    n=st.integers(min_value=3, max_value=12),
    extra=st.integers(min_value=0, max_value=8),
    changes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10 ** 6),
            st.one_of(
                st.floats(min_value=0.1, max_value=100.0),
                st.just(UNREACHABLE),
            ),
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_property_noop_accounting_and_change_flag(seed, n, extra, changes):
    """``update_cost`` returns False exactly for accounted no-ops, and a
    False return guarantees the tree (routes *and* distances) did not
    move -- the contract the compiled-forwarding-table invalidation in
    :mod:`repro.psn.node` relies on."""
    net = build_random_network(n, extra_circuits=extra, seed=seed)
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    for raw_link, cost in changes:
        link_id = raw_link % len(net.links)
        noops_before = tree.stats.no_op_updates
        incremental_before = tree.stats.incremental_updates
        dist_before = dict(tree.dist)
        parents_before = dict(tree.parent_link)
        changed = tree.update_cost(link_id, cost)
        if changed:
            assert tree.stats.incremental_updates == incremental_before + 1
            assert tree.stats.no_op_updates == noops_before
        else:
            assert tree.stats.no_op_updates == noops_before + 1
            assert tree.stats.incremental_updates == incremental_before
            assert tree.dist == dist_before
            assert tree.parent_link == parents_before
        # Either way the tree must agree with a from-scratch build.
        fresh = SpfTree(net, 0, tree.costs.copy())
        for node in net.nodes:
            if math.isinf(fresh.dist[node]):
                assert math.isinf(tree.dist[node])
            else:
                assert tree.dist[node] == pytest.approx(fresh.dist[node])
