"""Tests for the network-wide SPF cache and compiled forwarding tables.

Covers the three guarantees the hot-path layer makes:

* compiled tables agree with :meth:`SpfTree.next_hop_link` entry for
  entry (including unreachable destinations),
* cache keys invalidate on cost changes and on link up/down, and the
  hit/miss accounting reflects every lookup,
* a full simulation produces bit-identical reports with the cache on
  and off -- the cache is pure speed, never behavior.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import HopNormalizedMetric
from repro.routing import CostTable, SpfTree
from repro.routing.spf_cache import SpfCache, compile_forwarding_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_random_network, build_ring_network
from repro.traffic import TrafficMatrix


def _assert_table_matches_tree(table, tree):
    for dest in tree.network.nodes:
        assert table[dest] == tree.next_hop_link(dest), (
            f"compiled table disagrees with tree at dest {dest}"
        )


# ----------------------------------------------------------------------
# compile_forwarding_table
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    n=st.integers(min_value=2, max_value=16),
    extra=st.integers(min_value=0, max_value=10),
    root=st.integers(min_value=0, max_value=15),
)
def test_compiled_table_matches_next_hop_link(seed, n, extra, root):
    net = build_random_network(n, extra_circuits=extra, seed=seed)
    tree = SpfTree(net, root % n, CostTable.uniform(net, 1.0))
    _assert_table_matches_tree(compile_forwarding_table(tree), tree)


def test_compiled_table_handles_unreachable_partition():
    net = build_ring_network(4)
    # Sever node 3 from the ring entirely: both its circuits go down.
    down = {
        link.link_id
        for link in net.out_links(3, include_down=True)
    }
    for link_id in sorted(down):
        net.set_circuit_state(link_id, up=False)
    tree = SpfTree(net, 0, CostTable.uniform(net, 1.0))
    table = compile_forwarding_table(tree)
    assert table[0] is None  # the root itself
    assert table[3] is None  # unreachable
    assert table[1] is not None and table[2] is not None
    _assert_table_matches_tree(table, tree)


# ----------------------------------------------------------------------
# Hit/miss accounting
# ----------------------------------------------------------------------
def test_forwarding_table_hit_and_miss_accounting():
    net = build_ring_network(5)
    cache = SpfCache(net)
    tree = SpfTree(net, 0, CostTable.uniform(net, 10.0))

    first = cache.forwarding_table(tree)
    assert cache.stats.table_misses == 1
    assert cache.stats.table_hits == 0

    again = cache.forwarding_table(tree)
    assert again is first  # shared object, not a recompile
    assert cache.stats.table_hits == 1
    assert cache.stats.table_lookups == 2

    # Another node with the *same* cost view shares the miss: different
    # root means a different key, so it compiles its own table...
    other = SpfTree(net, 2, CostTable.uniform(net, 10.0))
    other_table = cache.forwarding_table(other)
    assert other_table is not first
    assert cache.stats.table_misses == 2
    # ...but a same-root, same-cost lookup from a distinct CostTable
    # object still hits: the key is the fingerprint, not identity.
    clone = SpfTree(net, 0, CostTable.uniform(net, 10.0))
    assert cache.forwarding_table(clone) is first
    assert cache.stats.table_hits == 2


def test_shared_tree_hit_and_miss_accounting():
    net = build_ring_network(5)
    cache = SpfCache(net)
    costs = CostTable.uniform(net, 7.0)

    tree = cache.shared_tree(1, costs)
    assert cache.stats.tree_misses == 1
    assert cache.shared_tree(1, CostTable.uniform(net, 7.0)) is tree
    assert cache.stats.tree_hits == 1

    # The shared tree must be a real from-scratch Dijkstra result.
    fresh = SpfTree(net, 1, costs.copy())
    assert tree.dist == fresh.dist
    assert tree.parent_link == fresh.parent_link

    # The cached tree owns a private copy: mutating the caller's table
    # afterwards must not corrupt it.
    costs[0] = 99.0
    assert tree.costs[0] == 7.0


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_cost_change_invalidates_cached_table():
    net = build_ring_network(4)
    cache = SpfCache(net)
    costs = CostTable.uniform(net, 5.0)
    tree = SpfTree(net, 0, costs)

    stale = cache.forwarding_table(tree)
    tree.update_cost(0, 50.0)
    fresh = cache.forwarding_table(tree)
    assert cache.stats.table_misses == 2  # new fingerprint -> recompile
    _assert_table_matches_tree(fresh, tree)

    # Reverting the cost restores the old fingerprint: the original
    # entry is still cached and comes back verbatim.
    tree.update_cost(0, 5.0)
    assert cache.forwarding_table(tree) is stale


def test_link_state_change_invalidates_cached_entries():
    net = build_ring_network(4)
    cache = SpfCache(net)
    tree = SpfTree(net, 0, CostTable.uniform(net, 5.0))
    cache.forwarding_table(tree)
    cache.shared_tree(0, tree.costs)
    version = net.topology_version

    affected = net.set_circuit_state(0, up=False)
    assert affected and net.topology_version > version
    # Same root, same cost fingerprint -- but the topology version in
    # the key changed, so both stores must miss.
    tree.recompute()
    cache.forwarding_table(tree)
    cache.shared_tree(0, tree.costs)
    assert cache.stats.table_misses == 2
    assert cache.stats.tree_misses == 2

    # Bringing the circuit back up is a *new* version again, not a
    # return to the old key: entries computed while it was down can
    # never be served for the restored topology.
    net.set_circuit_state(0, up=True)
    tree.recompute()
    cache.forwarding_table(tree)
    assert cache.stats.table_misses == 3


def test_lru_eviction_is_bounded_and_counted():
    net = build_ring_network(4)
    cache = SpfCache(net, max_entries=2)
    for root in range(3):
        cache.forwarding_table(SpfTree(net, root, CostTable.uniform(net, 1.0)))
    assert len(cache._tables) == 2
    assert cache.stats.evictions == 1
    # Root 0 was evicted (least recently used) -> looking it up misses.
    cache.forwarding_table(SpfTree(net, 0, CostTable.uniform(net, 1.0)))
    assert cache.stats.table_misses == 4

    cache.clear()
    assert len(cache) == 0
    assert cache.stats.table_misses == 4  # stats survive clear()


def test_max_entries_must_be_positive():
    with pytest.raises(ValueError):
        SpfCache(build_ring_network(3), max_entries=0)


# ----------------------------------------------------------------------
# End to end: the cache is pure speed
# ----------------------------------------------------------------------
def _run_ring(spf_cache: bool):
    network = build_ring_network(4)
    traffic = TrafficMatrix.uniform(network, total_bps=40_000.0)
    simulation = NetworkSimulation(
        network, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=30.0, warmup_s=5.0, seed=11,
                       spf_cache=spf_cache),
    )
    report = simulation.run()
    return simulation, report


def test_simulation_identical_with_cache_on_and_off():
    sim_on, report_on = _run_ring(spf_cache=True)
    sim_off, report_off = _run_ring(spf_cache=False)

    assert sim_on.spf_cache is not None
    assert sim_off.spf_cache is None
    assert dataclasses.asdict(report_on) == dataclasses.asdict(report_off)
    assert sim_on.stats.cost_history == sim_off.stats.cost_history


# ----------------------------------------------------------------------
# Cache keys are O(changed), never O(links)
# ----------------------------------------------------------------------
def test_cache_key_work_is_o_changed_not_o_links():
    """``key_work`` counts fingerprint entries touched: L to build the
    table, then exactly one per mutation -- ``cache_key()`` itself adds
    nothing, however many links the table holds or lookups happen."""
    net = build_random_network(24, extra_circuits=12, seed=4)
    links = len(net.links)
    table = CostTable.uniform(net, 1.0)
    assert table.key_work == links  # the one full build, at construction

    for _ in range(100):
        table.cache_key()
    assert table.key_work == links  # lookups are free

    for change, link_id in enumerate(range(0, links, 3)):
        table[link_id] = 2.0 + change
        table.cache_key()
    changed = len(range(0, links, 3))
    assert table.key_work == links + changed  # one entry per mutation


def test_cache_key_tracks_content_not_history():
    net = build_ring_network(5)
    mutated = CostTable.uniform(net, 1.0)
    mutated[2] = 7.0
    mutated[4] = 3.0
    mutated[2] = 1.0  # revert

    assert CostTable(list(mutated.costs)).cache_key() == mutated.cache_key()

    # And a genuine difference is never masked by the mixing.
    mutated[4] = 1.0
    assert CostTable(list(mutated.costs)).cache_key() == mutated.cache_key()
    assert mutated.cache_key() != CostTable(
        [2.0] * len(net.links)
    ).cache_key()
