"""Tests for the equal-cost multipath extension (paper section 4.5)."""

import pytest

from repro.routing import CostTable, MultipathRouter
from repro.topology import Network, build_grid_network, build_ring_network, line_type


def diamond_network():
    """S with two equal 2-hop paths to T (via M1 or M2)."""
    net = Network("diamond")
    s = net.add_node("S").node_id
    m1 = net.add_node("M1").node_id
    m2 = net.add_node("M2").node_id
    t = net.add_node("T").node_id
    for a, b in ((s, m1), (s, m2), (m1, t), (m2, t)):
        net.add_circuit(a, b, line_type("56K-T"))
    return net, s, m1, m2, t


def test_equal_paths_both_candidates():
    net, s, m1, m2, t = diamond_network()
    router = MultipathRouter(net, s, CostTable.uniform(net, 30.0))
    options = router.next_hop_links(t)
    dsts = {net.link(l).dst for l in options}
    assert dsts == {m1, m2}
    assert router.path_diversity(t) == 2


def test_unequal_paths_single_candidate():
    net, s, m1, m2, t = diamond_network()
    costs = CostTable.uniform(net, 30.0)
    costs[net.links_between(s, m2)[0].link_id] = 60.0
    router = MultipathRouter(net, s, costs)
    options = router.next_hop_links(t)
    assert {net.link(l).dst for l in options} == {m1}


def test_slack_keeps_slightly_longer_path():
    net, s, m1, m2, t = diamond_network()
    costs = CostTable.uniform(net, 30.0)
    costs[net.links_between(s, m2)[0].link_id] = 40.0  # +10 units
    strict = MultipathRouter(net, s, costs.copy(), slack=0.0)
    loose = MultipathRouter(net, s, costs.copy(), slack=15.0)
    assert strict.path_diversity(t) == 1
    assert loose.path_diversity(t) == 2


def test_packet_mode_round_robins():
    net, s, m1, m2, t = diamond_network()
    router = MultipathRouter(net, s, CostTable.uniform(net, 30.0),
                             mode="packet")
    picks = [router.next_hop_link(t) for _ in range(6)]
    first_hops = [net.link(l).dst for l in picks]
    assert first_hops.count(m1) == 3
    assert first_hops.count(m2) == 3
    assert first_hops[0] != first_hops[1]  # alternating


def test_flow_mode_is_sticky_per_flow():
    net, s, m1, m2, t = diamond_network()
    router = MultipathRouter(net, s, CostTable.uniform(net, 30.0),
                             mode="flow")
    picks_a = {router.next_hop_link(t, src=17) for _ in range(5)}
    picks_b = {router.next_hop_link(t, src=18) for _ in range(5)}
    assert len(picks_a) == 1
    assert len(picks_b) == 1


def test_update_cost_recomputes():
    net, s, m1, m2, t = diamond_network()
    router = MultipathRouter(net, s, CostTable.uniform(net, 30.0))
    assert router.path_diversity(t) == 2
    router.update_cost(net.links_between(s, m1)[0].link_id, 90.0)
    assert router.path_diversity(t) == 1


def test_unreachable_destination():
    net, s, m1, m2, t = diamond_network()
    costs = CostTable.uniform(net, 30.0)
    for link in net.out_links(s):
        costs[link.link_id] = float("inf")
    router = MultipathRouter(net, s, costs)
    assert router.next_hop_link(t) is None
    assert router.next_hop_links(t) == []


def test_self_destination():
    net, s, *_rest = diamond_network()
    router = MultipathRouter(net, s, CostTable.uniform(net, 30.0))
    assert router.next_hop_link(s) is None


def test_rejects_bad_parameters():
    net, s, *_rest = diamond_network()
    with pytest.raises(ValueError):
        MultipathRouter(net, s, CostTable.uniform(net, 30.0), mode="magic")
    with pytest.raises(ValueError):
        MultipathRouter(net, s, CostTable.uniform(net, 30.0), slack=-1.0)


def test_grid_has_rich_diversity():
    net = build_grid_network(3, 3)
    router = MultipathRouter(net, 0, CostTable.uniform(net, 30.0))
    # Opposite corner of the grid: both axes offer equal-cost first hops.
    assert router.path_diversity(8) == 2


def test_loop_freedom_with_safe_slack():
    """Forwarding along ECMP candidates always reaches the destination
    when slack < min link cost."""
    net = build_grid_network(3, 4)
    costs = CostTable([30.0 + (i % 5) for i in range(len(net.links))])
    routers = {
        n: MultipathRouter(net, n, costs.copy(), mode="packet", slack=15.0)
        for n in net.nodes
    }
    for src in net.nodes:
        for dst in net.nodes:
            if src == dst:
                continue
            node = src
            for _hop in range(len(net.nodes) + 1):
                if node == dst:
                    break
                link_id = routers[node].next_hop_link(dst, src=src)
                assert link_id is not None
                node = net.link(link_id).dst
            assert node == dst


def test_single_path_on_ring_matches_spf():
    """Where no equal-cost alternatives exist, ECMP = plain SPF."""
    from repro.routing import SpfTree

    net = build_ring_network(5)
    costs = CostTable([30.0 + i for i in range(len(net.links))])
    router = MultipathRouter(net, 0, costs.copy())
    tree = SpfTree(net, 0, costs.copy())
    for dest in net.nodes:
        if dest == 0:
            continue
        assert router.path_diversity(dest) == 1
        assert router.next_hop_link(dest) == tree.next_hop_link(dest)
