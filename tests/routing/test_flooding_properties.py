"""Property tests for the flooding protocol on arbitrary topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import FloodingState
from repro.topology import build_random_network


def synchronous_flood(network, origin_node, update):
    """Flood an update to completion; return per-node accept counts."""
    states = {n: FloodingState(network, n) for n in network.nodes}
    # Re-key the origin's state so sequence numbers line up.
    states[origin_node]._highest_seen[update.key()] = update.sequence
    frontier = [
        (update, link_id)
        for link_id in states[origin_node].forward_links(None)
    ]
    accepts = {n: 0 for n in network.nodes}
    hops = 0
    while frontier:
        hops += 1
        assert hops < 100_000, "flood did not terminate"
        message, via = frontier.pop()
        receiver = network.link(via).dst
        if states[receiver].accept(message):
            accepts[receiver] += 1
            frontier.extend(
                (message, out)
                for out in states[receiver].forward_links(arrived_on=via)
            )
    return accepts


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=14),
    extra=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=500),
    origin_pick=st.integers(min_value=0, max_value=10 ** 6),
)
def test_property_flood_reaches_everyone_exactly_once(
    n, extra, seed, origin_pick
):
    """On any connected topology, any flooded update is accepted exactly
    once by every node other than the originator, and the flood
    terminates."""
    network = build_random_network(n, extra_circuits=extra, seed=seed)
    origin = origin_pick % n
    origin_state = FloodingState(network, origin)
    own_link = network.out_links(origin)[0].link_id
    update = origin_state.originate(own_link, 42)

    accepts = synchronous_flood(network, origin, update)
    assert accepts[origin] == 0
    for node in network.nodes:
        if node != origin:
            assert accepts[node] == 1, node


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=10),
    seed=st.integers(min_value=0, max_value=200),
    costs=st.lists(
        st.integers(min_value=30, max_value=90), min_size=3, max_size=3
    ),
)
def test_property_repeated_floods_keep_latest(n, seed, costs):
    """Sequenced re-floods: every node ends holding only the newest."""
    network = build_random_network(n, extra_circuits=3, seed=seed)
    origin_state = FloodingState(network, 0)
    own_link = network.out_links(0)[0].link_id
    receivers = {
        node: FloodingState(network, node)
        for node in network.nodes if node != 0
    }
    last_accepted = {}
    for cost in costs:
        update = origin_state.originate(own_link, cost)
        for node, state in receivers.items():
            if state.accept(update):
                last_accepted[node] = update.cost
        # Replaying any older update is always rejected.
        for node, state in receivers.items():
            assert not state.accept(update)
    for node in receivers:
        assert last_accepted[node] == costs[-1]
