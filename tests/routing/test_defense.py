"""Unit tests for the defense layer (:mod:`repro.routing.defense`).

Pure protocol logic: every method takes ``now`` explicitly, so the
screens, the quarantine state machine and the purge pass are exercised
here without a simulator, exactly like the flooding tests.
"""

import pytest

from repro.metrics import HopNormalizedMetric
from repro.psn.node import DOWN_COST
from repro.routing import (
    REJECT_REASONS,
    DefenseConfig,
    DefensePolicy,
    FloodingState,
    NodeDefense,
    RoutingUpdate,
)
from repro.topology import build_ring_network

#: In the 4-ring, node 1 owns link 2 (1 -> 2) and node 0 owns link 0.
NET = build_ring_network(4)
METRIC = HopNormalizedMetric()


def _defense(config=None, node_id=0):
    policy = DefensePolicy(NET, METRIC, config or DefenseConfig())
    flooding = FloodingState(NET, node_id)
    return NodeDefense(policy, node_id, flooding)


def _own_link(node_id):
    return NET.out_links(node_id)[0].link_id


def _legal_cost(link_id):
    return METRIC.min_cost_for(NET.link(link_id))


def test_config_validation():
    with pytest.raises(ValueError):
        DefenseConfig(seq_window=0)
    with pytest.raises(ValueError):
        DefenseConfig(rate_limit_per_s=0.0)
    with pytest.raises(ValueError):
        DefenseConfig(rate_burst=0.5)
    with pytest.raises(ValueError):
        DefenseConfig(quarantine_s=60.0, max_quarantine_s=30.0)
    with pytest.raises(ValueError):
        DefenseConfig(purge_age_s=10.0, purge_interval_s=30.0)
    # Disabled purging lifts the age/interval coupling.
    DefenseConfig(purge_age_s=10.0, purge_interval_s=0.0)


def test_policy_snapshots_cost_bounds_per_link():
    policy = DefensePolicy(NET, METRIC, DefenseConfig())
    assert set(policy.bounds) == {link.link_id for link in NET.links}
    for link in NET.links:
        lo, hi = policy.bounds[link.link_id]
        assert lo == METRIC.min_cost_for(link)
        assert hi == METRIC.params_for(link).max_cost
        assert lo <= hi


def test_unknown_metric_skips_range_screen():
    class Weird:
        pass

    policy = DefensePolicy(NET, Weird(), DefenseConfig())
    assert policy.bounds == {}
    defense = NodeDefense(policy, 0, FloodingState(NET, 0))
    link = _own_link(1)
    wild = RoutingUpdate(1, link, 999_999, 1)
    assert defense.screen(wild, 1, 0.0) is None


def test_in_band_update_passes_every_screen():
    defense = _defense()
    link = _own_link(1)
    update = RoutingUpdate(1, link, _legal_cost(link), 1)
    assert defense.screen(update, 1, 0.0) is None
    assert defense.stats.rejected == 0


def test_out_of_range_cost_rejected_but_down_cost_is_legal():
    defense = _defense()
    link = _own_link(1)
    _, hi = defense.policy.bounds[link]
    bad = RoutingUpdate(1, link, hi + 1, 1)
    assert defense.screen(bad, 1, 0.0) == "cost-range"
    assert defense.stats.rejected_cost == 1
    # DOWN_COST ("line dead") always passes: every node may report it.
    dead = RoutingUpdate(1, link, DOWN_COST, 2)
    assert defense.screen(dead, 1, 0.0) is None


def test_sequence_jump_beyond_window_rejected():
    defense = _defense()
    link = _own_link(1)
    cost = _legal_cost(link)
    first = RoutingUpdate(1, link, cost, 1)
    assert defense.screen(first, 1, 0.0) is None
    assert defense.flooding.accept(first)
    window = defense.policy.config.seq_window
    plausible = RoutingUpdate(1, link, cost, 1 + window)
    assert defense.screen(plausible, 1, 1.0) is None
    forged = RoutingUpdate(1, link, cost, 1 + window + 1)
    assert defense.screen(forged, 1, 1.0) == "seq-implausible"
    assert defense.stats.rejected_seq == 1


def test_absent_key_accepts_any_sequence():
    # The re-learn door: a purged (or never-seen) key must accept any
    # sequence, else purge-and-reflood could never heal a poisoning.
    defense = _defense()
    link = _own_link(1)
    huge = RoutingUpdate(1, link, _legal_cost(link), 1 << 20)
    assert defense.screen(huge, 1, 0.0) is None


def test_rejections_accumulate_into_quarantine_and_rehabilitation():
    config = DefenseConfig(quarantine_score=3.0, quarantine_s=30.0)
    defense = _defense(config)
    link = _own_link(1)
    _, hi = defense.policy.bounds[link]
    for seq in range(1, 4):  # three strikes in one burst
        bad = RoutingUpdate(1, link, hi + 1, seq)
        assert defense.screen(bad, 1, 3.0) == "cost-range"
    assert defense.stats.quarantines == 1
    assert defense.quarantined(1, 4.0)
    # Everything from the quarantined neighbour bounces, even honest.
    honest = RoutingUpdate(1, link, _legal_cost(link), 4)
    assert defense.screen(honest, 1, 4.0) == "quarantined"
    # ... but only until the sentence is served.
    after = 3.0 + 30.0 + 1.0
    assert defense.screen(honest, 1, after) is None
    assert defense.stats.rehabilitations == 1
    assert not defense.quarantined(1, after)


def test_quarantine_doubles_on_relapse_up_to_the_cap():
    config = DefenseConfig(
        quarantine_score=1.0, quarantine_s=10.0, max_quarantine_s=15.0
    )
    defense = _defense(config)
    link = _own_link(1)
    _, hi = defense.policy.bounds[link]
    sentences = []
    defense.on_quarantine = lambda node, until: sentences.append(until)
    now = 0.0
    for relapse in range(3):
        assert defense.screen(
            RoutingUpdate(1, link, hi + 1, relapse + 1), 1, now
        ) == "cost-range"
        now = sentences[-1] + 1.0  # serve it out, then re-offend
        defense.screen(RoutingUpdate(1, link, _legal_cost(link),
                                     relapse + 2), 1, now)
    lengths = [
        until - start for until, start in
        zip(sentences, [0.0] + [s + 1.0 for s in sentences])
    ]
    assert lengths == [10.0, 15.0, 15.0]  # 10, then 20 capped to 15


def test_score_decay_forgives_isolated_rejections():
    config = DefenseConfig(quarantine_score=2.0, score_decay_per_s=1.0)
    defense = _defense(config)
    link = _own_link(1)
    _, hi = defense.policy.bounds[link]
    defense.screen(RoutingUpdate(1, link, hi + 1, 1), 1, 0.0)
    # 5 s later the first point has fully decayed; this second strike
    # leaves the score at 1 < 2, so no quarantine.
    defense.screen(RoutingUpdate(1, link, hi + 1, 2), 1, 5.0)
    assert defense.stats.quarantines == 0


def test_token_bucket_charges_originations_only():
    config = DefenseConfig(rate_limit_per_s=1.0, rate_burst=2.0)
    defense = _defense(config)
    link = _own_link(1)
    far_link = _own_link(2)
    cost = _legal_cost(link)
    # Two originations drain the burst; the third bounces.
    for seq in (1, 2):
        assert defense.screen(RoutingUpdate(1, link, cost, seq), 1, 0.0) \
            is None
    third = RoutingUpdate(1, link, cost, 3)
    assert defense.screen(third, 1, 0.0) == "rate-limit"
    assert defense.stats.rejected_rate == 1
    # A *forwarded* third-party update is free: fan-in is the
    # protocol's doing, not the neighbour's.
    forwarded = RoutingUpdate(2, far_link, _legal_cost(far_link), 1)
    assert defense.screen(forwarded, 1, 0.0) is None
    # Tokens refill with time.
    assert defense.screen(RoutingUpdate(1, link, cost, 3), 1, 2.0) is None


def test_purge_evicts_stale_foreign_keys_only():
    config = DefenseConfig(purge_age_s=100.0, purge_interval_s=25.0)
    defense = _defense(config, node_id=0)
    flooding = defense.flooding
    link = _own_link(1)
    stale = RoutingUpdate(1, link, _legal_cost(link), 1)
    assert flooding.accept(stale)
    defense.note_accepted(stale, 10.0)
    own = flooding.originate(_own_link(0), _legal_cost(_own_link(0)))
    defense.note_accepted(own, 10.0)
    fresh_link = _own_link(2)
    fresh = RoutingUpdate(2, fresh_link, _legal_cost(fresh_link), 1)
    assert flooding.accept(fresh)
    defense.note_accepted(fresh, 150.0)
    purged = defense.purge(200.0)
    assert purged == 1  # only the stale foreign entry
    assert stale.key() not in flooding._highest_seen
    assert own.key() in flooding._highest_seen  # own keys never purge
    assert fresh.key() in flooding._highest_seen  # refreshed in time
    assert defense.stats.purge_passes == 1
    assert defense.stats.purged_entries == 1
    # The purged key now accepts any sequence: the re-learn door.
    relearn = RoutingUpdate(1, link, _legal_cost(link), 1)
    assert defense.screen(relearn, 1, 201.0) is None


def test_reject_reasons_constant_matches_screen_outputs():
    assert set(REJECT_REASONS) == {
        "quarantined", "rate-limit", "cost-range", "seq-implausible"
    }
