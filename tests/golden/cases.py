"""Golden-snapshot cases: same-seed runs that must never change.

Each case builds and runs one simulation whose :class:`SimulationReport`
was recorded from the pre-optimization tree.  The hot-path layer (SPF
cache, forwarding tables, DES fast path) is required to be a *pure*
speed change, so every one of these runs must stay bit-identical --
including the full reported-cost history, which pins the routing
dynamics, not just the packet totals.

The case set deliberately crosses every forwarding feature: plain
single-path, equal-cost multipath (both modes), line errors, RFNM flow
control, and a link failure/recovery (topology up/down invalidation).

Every case accepts :class:`ScenarioConfig` field overrides, so the same
runs double as equivalence fixtures: the batched-SPF acceptance test
replays each case with ``batched_spf`` forced on and off and demands
bit-identical snapshots (see ``tests/sim/test_batched_spf_golden.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict

from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.sim import NetworkSimulation, ScenarioConfig, build_scenario
from repro.topology import build_ring_network, build_two_region_network
from repro.traffic import TrafficMatrix


def _ring(metric, config: ScenarioConfig, nodes: int = 4,
          total_bps: float = 40_000.0) -> NetworkSimulation:
    network = build_ring_network(nodes)
    traffic = TrafficMatrix.uniform(network, total_bps=total_bps)
    return NetworkSimulation(network, metric, traffic, config)


def _config(overrides: Dict, **fields) -> ScenarioConfig:
    fields.update(overrides)
    return ScenarioConfig(**fields)


def _case_arpanet_aug87(**overrides):
    config = _config(overrides, duration_s=30.0, warmup_s=10.0, seed=3)
    simulation = build_scenario("aug87", config=config)
    return simulation, simulation.run()


def _case_two_region_hnspf(**overrides):
    config = _config(overrides, duration_s=60.0, warmup_s=10.0, seed=1)
    simulation = build_scenario("two-region-hnspf", config=config)
    return simulation, simulation.run()


def _case_ring_multipath_flow(**overrides):
    simulation = _ring(
        HopNormalizedMetric(),
        _config(overrides, duration_s=60.0, warmup_s=10.0, seed=0,
                multipath="flow"),
    )
    return simulation, simulation.run()


def _case_ring_multipath_packet(**overrides):
    simulation = _ring(
        HopNormalizedMetric(),
        _config(overrides, duration_s=60.0, warmup_s=10.0, seed=0,
                multipath="packet"),
    )
    return simulation, simulation.run()


def _case_ring_errors_flow_control(**overrides):
    simulation = _ring(
        DelayMetric(),
        _config(overrides, duration_s=60.0, warmup_s=10.0, seed=2,
                line_error_rate=0.01, flow_control_window=8),
    )
    return simulation, simulation.run()


def _case_failure_recovery(**overrides):
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        _config(overrides, duration_s=90.0, warmup_s=10.0, seed=5),
    )
    bridge = built.bridge_a[0].link_id
    simulation.fail_circuit_at(bridge, 30.0)
    simulation.restore_circuit_at(bridge, 60.0)
    return simulation, simulation.run()


CASES: Dict[str, Callable] = {
    "arpanet-aug87": _case_arpanet_aug87,
    "two-region-hnspf": _case_two_region_hnspf,
    "ring-multipath-flow": _case_ring_multipath_flow,
    "ring-multipath-packet": _case_ring_multipath_packet,
    "ring-errors-flow-control": _case_ring_errors_flow_control,
    "failure-recovery": _case_failure_recovery,
}


def run_case(name: str, **overrides) -> Dict:
    """Run one case, returning its comparable snapshot dict.

    ``overrides`` are :class:`ScenarioConfig` field values forced onto
    the case's configuration (e.g. ``batched_spf=False``); the golden
    snapshots are recorded with no overrides.
    """
    simulation, report = CASES[name](**overrides)
    digest = hashlib.sha256()
    for when, link_id, cost in simulation.stats.cost_history:
        digest.update(f"{when!r}:{link_id}:{cost};".encode())
    return {
        "report": dataclasses.asdict(report),
        "cost_history_sha256": digest.hexdigest(),
        "cost_history_len": len(simulation.stats.cost_history),
    }
