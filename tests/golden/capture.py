"""Record the golden snapshots (run against the pre-optimization tree).

Usage::

    PYTHONPATH=src python -m tests.golden.capture

Overwrites ``tests/golden/reports.json``.  Only rerun this when a
*behaviour* change is intended and reviewed; the whole point of the file
is that pure-performance PRs cannot move it.
"""

from __future__ import annotations

import json
import pathlib
import time

from tests.golden.cases import CASES, run_case

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent / "reports.json"


def main() -> None:
    snapshots = {}
    for name in sorted(CASES):
        start = time.perf_counter()
        snapshots[name] = run_case(name)
        print(f"{name}: {time.perf_counter() - start:.2f}s")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(snapshots, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
