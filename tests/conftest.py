"""Shared pytest configuration: the fast/slow test tiers.

The default run (``pytest -x -q``) is the fast tier: everything not
marked ``slow``, intended to finish well under 90 seconds so it can
gate every commit.  Tests marked ``@pytest.mark.slow`` -- the long
packet-level simulations and multi-scenario sweeps -- are skipped
unless ``--runslow`` is given:

    pytest -x -q             # fast tier
    pytest -x -q --runslow   # everything
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
