"""The numpy fast paths must agree with the scalar reference paths.

The analysis package has two implementations of its hot loops: the
original per-link Python (kept as the reference and as the fallback for
third-party metrics) and the vectorized numpy pipeline used at scale.
These tests pin their equivalence -- bit-identical for the operational
(fluid) pipeline, within bisection tolerance for the equilibrium solver.
"""

import numpy as np
import pytest

from repro.analysis import (
    build_response_map,
    equilibrium_point,
    equilibrium_points,
    reference_link,
)
from repro.analysis.fluid import FluidNetworkModel
from repro.metrics import DelayMetric, HopNormalizedMetric, MinHopMetric
from repro.metrics.queueing import (
    delay_to_utilization,
    delay_to_utilization_array,
    utilization_to_delay_s,
    utilization_to_delay_s_array,
)
from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix

ALL_METRICS = [HopNormalizedMetric, DelayMetric, MinHopMetric]


@pytest.fixture(scope="module")
def rmap():
    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 366_000.0, weights=site_weights())
    return build_response_map(net, traffic)


@pytest.fixture(scope="module")
def link():
    return reference_link("56K-T", propagation_s=0.001)


def test_queueing_transforms_match_scalar():
    utilizations = np.linspace(0.0, 1.2, 50)
    bandwidth = 56_000.0
    delays = utilization_to_delay_s_array(
        utilizations, bandwidth, propagations_s=0.005
    )
    for u, d in zip(utilizations, delays):
        assert d == utilization_to_delay_s(
            float(u), bandwidth, propagation_s=0.005
        )
    back = delay_to_utilization_array(delays, bandwidth, propagations_s=0.005)
    for d, u in zip(delays, back):
        assert u == delay_to_utilization(float(d), bandwidth,
                                         propagation_s=0.005)


@pytest.mark.parametrize("metric_cls", ALL_METRICS)
def test_cost_at_utilization_array_matches_scalar(metric_cls, link):
    metric = metric_cls()
    utilizations = np.linspace(0.0, 1.0, 101)
    vector = metric.cost_at_utilization_array(link, utilizations)
    for u, cost in zip(utilizations, vector):
        assert cost == metric.cost_at_utilization(link, float(u))


@pytest.mark.parametrize("metric_cls", ALL_METRICS)
def test_measured_costs_vector_matches_scalar(metric_cls):
    """The struct-of-arrays pipeline is bit-identical to per-link state."""
    metric = metric_cls()
    net = build_arpanet_1987()
    links = list(net.links)
    vstate = metric.create_vector_state(links)
    assert vstate is not None
    states = {l.link_id: metric.create_state(l) for l in links}
    rng = np.random.default_rng(42)
    for _ in range(10):
        utilizations = rng.uniform(0.0, 1.0, len(links))
        delays = utilization_to_delay_s_array(
            utilizations,
            np.array([l.bandwidth_bps for l in links]),
            propagations_s=np.array([l.propagation_s for l in links]),
        )
        vector = metric.measured_costs(vstate, delays)
        for i, l in enumerate(links):
            scalar = metric.measured_cost(l, states[l.link_id],
                                          float(delays[i]))
            assert vector[i] == scalar, (metric.name, l.link_id)


@pytest.mark.parametrize("metric_cls", ALL_METRICS)
def test_fluid_model_vector_path_matches_scalar(metric_cls):
    metric = metric_cls()
    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 732_000.0, weights=site_weights())
    vec = FluidNetworkModel(net, metric, traffic)
    assert vec._vector_state is not None
    scal = FluidNetworkModel(build_arpanet_1987(), metric_cls(), traffic)
    # Force the per-link reference path.
    scal._vector_state = None
    scal._metric_state = {
        l.link_id: scal.metric.create_state(l) for l in scal.network.links
    }
    for round_index in range(8):
        a = vec.step(round_index)
        b = scal.step(round_index)
        assert vec.costs.costs == scal.costs.costs, round_index
        assert a.mean_utilization == b.mean_utilization
        assert a.churn == b.churn
        assert a.overload_bps == b.overload_bps


@pytest.mark.parametrize("metric_cls", ALL_METRICS)
def test_equilibrium_points_match_scalar_bisection(metric_cls, rmap, link):
    metric = metric_cls()
    loads = np.linspace(0.0, 4.0, 41)
    vector = equilibrium_points(metric, link, rmap, loads)
    for load, point in zip(loads, vector):
        ref = equilibrium_point(metric, link, rmap, float(load))
        assert point.reported_cost_hops == pytest.approx(
            ref.reported_cost_hops, abs=1e-5
        )
        assert point.utilization == pytest.approx(ref.utilization, abs=1e-5)


def test_equilibrium_points_empty_and_negative(rmap, link):
    assert equilibrium_points(HopNormalizedMetric(), link, rmap, []) == []
    with pytest.raises(ValueError):
        equilibrium_points(HopNormalizedMetric(), link, rmap, [0.5, -1.0])
