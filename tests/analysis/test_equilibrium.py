"""Tests for equilibrium calculation (Figures 9 and 10)."""

import pytest

from repro.analysis import (
    build_response_map,
    equilibrium_point,
    equilibrium_utilization_curve,
    reference_link,
)
from repro.analysis.equilibrium import ideal_utilization, loop_function
from repro.metrics import DelayMetric, HopNormalizedMetric, MinHopMetric
from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


@pytest.fixture(scope="module")
def rmap():
    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 366_000.0, weights=site_weights())
    return build_response_map(net, traffic)


@pytest.fixture(scope="module")
def link():
    return reference_link("56K-T", propagation_s=0.001)


def test_fixed_point_property(rmap, link):
    """The returned point really is a fixed point of the loop map."""
    metric = HopNormalizedMetric()
    for load in (0.5, 1.0, 2.0):
        point = equilibrium_point(metric, link, rmap, load)
        step = loop_function(metric, link, rmap, load)
        assert step(point.reported_cost_hops) == pytest.approx(
            point.reported_cost_hops, abs=0.01
        )


def test_minhop_equilibrium_is_offered_load(rmap, link):
    metric = MinHopMetric()
    for load in (0.3, 0.8, 1.0, 2.5):
        point = equilibrium_point(metric, link, rmap, load)
        assert point.utilization == pytest.approx(min(load, 1.0))


def test_hnspf_tracks_minhop_until_50_percent(rmap, link):
    """Paper: 'it acts like min-hop until the link utilization exceeds
    50% and then starts shedding traffic'."""
    metric = HopNormalizedMetric()
    for load in (0.2, 0.35, 0.5):
        point = equilibrium_point(metric, link, rmap, load)
        assert point.utilization == pytest.approx(load, abs=0.02)
    above = equilibrium_point(metric, link, rmap, 1.5)
    assert above.utilization < 1.0


def test_hnspf_sustains_higher_utilization_than_dspf(rmap, link):
    """The paper's Figure-10 punchline, 'especially under high loads'."""
    for load in (0.75, 1.0, 1.5, 2.0, 4.0):
        hn = equilibrium_point(HopNormalizedMetric(), link, rmap, load)
        d = equilibrium_point(DelayMetric(), link, rmap, load)
        assert hn.utilization > d.utilization, load


def test_all_metrics_below_ideal(rmap, link):
    for load in (0.5, 1.0, 2.0):
        ideal = ideal_utilization(load)
        for metric in (MinHopMetric(), DelayMetric(), HopNormalizedMetric()):
            point = equilibrium_point(metric, link, rmap, load)
            assert point.utilization <= ideal + 1e-9


def test_equilibrium_monotone_in_offered_load(rmap, link):
    metric = HopNormalizedMetric()
    curve = equilibrium_utilization_curve(
        metric, link, rmap, [0.25, 0.5, 1.0, 2.0, 4.0]
    )
    utilizations = [p.utilization for p in curve]
    assert utilizations == sorted(utilizations)


def test_zero_load_reports_idle_cost(rmap, link):
    metric = HopNormalizedMetric()
    point = equilibrium_point(metric, link, rmap, 0.0)
    assert point.utilization == 0.0
    assert point.reported_cost_hops == pytest.approx(1.0)


def test_negative_load_rejected(rmap, link):
    with pytest.raises(ValueError):
        loop_function(HopNormalizedMetric(), link, rmap, -0.5)


def test_hnspf_cost_capped_at_three_hops(rmap, link):
    metric = HopNormalizedMetric()
    point = equilibrium_point(metric, link, rmap, 10.0)
    assert point.reported_cost_hops <= 3.0 + 1e-9