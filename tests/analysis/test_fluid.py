"""Tests for the network-wide fluid equilibrium model."""

import pytest

from repro.analysis import FluidNetworkModel
from repro.metrics import DelayMetric, HopNormalizedMetric, MinHopMetric
from repro.topology import build_arpanet_1987, build_ring_network
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


def test_ring_light_load_settles_at_min_cost():
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 30_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    trace = model.run(rounds=20)
    assert trace.settled()
    assert trace.rounds[-1].mean_cost == pytest.approx(30.0, abs=1.0)
    assert trace.tail_overload() == 0.0


def test_ease_in_visible_in_first_rounds():
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 30_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    trace = model.run(rounds=10)
    costs = [r.mean_cost for r in trace.rounds]
    assert costs[0] > costs[-1]  # descending from the ease-in maximum


def test_minhop_is_static_after_first_round():
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 30_000.0)
    model = FluidNetworkModel(net, MinHopMetric(), traffic)
    trace = model.run(rounds=5)
    assert trace.rounds[-1].churn == 0.0
    assert trace.rounds[-1].mean_cost == 30.0


def test_round_trackers():
    net = build_ring_network(4)
    traffic = TrafficMatrix.uniform(net, 20_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    trace = model.run(rounds=8)
    assert len(trace.rounds) == 8
    assert [r.round_index for r in trace.rounds] == list(range(8))
    for r in trace.rounds:
        assert 0.0 <= r.mean_utilization <= r.max_utilization <= 1.0
        assert 0.0 <= r.churn <= 1.0


def test_bad_rounds_rejected():
    net = build_ring_network(4)
    traffic = TrafficMatrix.uniform(net, 20_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    with pytest.raises(ValueError):
        model.run(rounds=0)


def test_link_utilization_query():
    net = build_ring_network(4)
    traffic = TrafficMatrix.hot_pairs({(0, 1): 28_000.0})
    model = FluidNetworkModel(net, HopNormalizedMetric(ease_in=False),
                              traffic)
    direct = net.links_between(0, 1)[0].link_id
    assert model.link_utilization(direct) == pytest.approx(0.5)


class TestArpanetScale:
    """The paper's stability claims, at network scale (fluid)."""

    @pytest.fixture(scope="class")
    def traces(self):
        results = {}
        for metric in (DelayMetric(), HopNormalizedMetric()):
            net = build_arpanet_1987()
            traffic = TrafficMatrix.gravity(
                net, 366_000.0, weights=site_weights()
            )
            model = FluidNetworkModel(net, metric, traffic)
            results[metric.name] = model.run(rounds=40)
        return results

    def test_hnspf_settles_dspf_churns(self, traces):
        assert traces["HN-SPF"].settled(churn_tolerance=0.1)
        assert not traces["D-SPF"].settled(churn_tolerance=0.1)

    def test_hnspf_less_overload(self, traces):
        assert traces["HN-SPF"].tail_overload() < \
            0.25 * traces["D-SPF"].tail_overload()

    def test_average_link_model_predicts_fluid_mean(self, traces):
        """The paper's average-link simplification is a reasonable
        approximation of the simultaneous-equilibrium reality: the fluid
        HN-SPF network settles with mean utilization in the same range
        the single-link model predicts for its mean offered load."""
        mean_u = traces["HN-SPF"].tail_mean_utilization()
        assert 0.05 < mean_u < 0.6


def test_persistent_trees_match_rebuilt_trees():
    """Carrying SPF trees between rounds (batched update_costs repair)
    is bit-identical to rebuilding every tree from scratch -- the
    canonical tie-break makes the tree a pure function of the costs."""
    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 366_000.0, weights=site_weights())
    persistent = FluidNetworkModel(net, DelayMetric(), traffic)
    rebuilt = FluidNetworkModel(
        build_arpanet_1987(), DelayMetric(),
        TrafficMatrix.gravity(net, 366_000.0, weights=site_weights()),
    )
    for index in range(25):
        fast = persistent.step(index)
        rebuilt._trees = None  # drop the carried trees: full rebuild
        assert fast == rebuilt.step(index)


def test_trees_rebuild_after_topology_change():
    """A link flip invalidates carried trees (repair can't model it)."""
    net = build_ring_network(4)
    traffic = TrafficMatrix.uniform(net, total_bps=40_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    model.step(0)
    victim = net.links_between(0, 1)[0]
    net.set_circuit_state(victim.link_id, False)
    load = model.route_demands()
    assert load[victim.link_id] == 0.0
    net.set_circuit_state(victim.link_id, True)
    load = model.route_demands()
    assert load[victim.link_id] > 0.0
