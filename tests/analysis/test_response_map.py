"""Tests for the Network Response Map (Figure 8)."""

import pytest

from repro.analysis import build_response_map
from repro.analysis.response_map import half_hop_grid
from repro.topology import build_arpanet_1987, build_ring_network
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


def test_half_hop_grid():
    assert half_hop_grid(2.0) == [0.5, 1.0, 1.5, 2.0]
    with pytest.raises(ValueError):
        half_hop_grid(0.5)


@pytest.fixture(scope="module")
def arpanet_map():
    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 366_000.0, weights=site_weights())
    return net, traffic, build_response_map(net, traffic)


def test_normalized_to_one_at_base(arpanet_map):
    _net, _traffic, rmap = arpanet_map
    index = rmap.reported_costs.index(1.0)
    assert rmap.normalized_traffic[index] == pytest.approx(1.0)


def test_monotone_decreasing(arpanet_map):
    _net, _traffic, rmap = arpanet_map
    values = rmap.normalized_traffic
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier + 1e-12


def test_90_percent_shed_at_cost_four(arpanet_map):
    """Paper: 'If the link reports a cost of 4, then over 90% of its base
    traffic will be shed.'"""
    _net, _traffic, rmap = arpanet_map
    assert rmap.traffic_fraction(4.0) < 0.2
    assert rmap.traffic_fraction(4.5) < 0.1


def test_epsilon_problem_cliff(arpanet_map):
    """A tiny cost change across the x=1 tie boundary sheds a large
    fraction of traffic (the paper's x=0.5 vs x=1.5 comparison)."""
    _net, _traffic, rmap = arpanet_map
    at_half = rmap.traffic_fraction(0.5)
    at_one_and_half = rmap.traffic_fraction(1.5)
    assert at_half - at_one_and_half > 0.25


def test_interpolation_and_extrapolation(arpanet_map):
    _net, _traffic, rmap = arpanet_map
    below = rmap.traffic_fraction(0.1)
    assert below == rmap.normalized_traffic[0]
    beyond = rmap.traffic_fraction(50.0)
    assert beyond == rmap.normalized_traffic[-1]
    # Interpolation lies between neighbours.
    mid = rmap.traffic_fraction(1.25)
    lo = rmap.traffic_fraction(1.5)
    hi = rmap.traffic_fraction(1.0)
    assert lo <= mid <= hi


def test_all_links_have_base_traffic_on_arpanet(arpanet_map):
    net, _traffic, rmap = arpanet_map
    assert rmap.links_averaged == len(net.links)
    assert all(bps > 0 for bps in rmap.base_traffic_bps.values())


def test_mean_base_utilization_positive(arpanet_map):
    net, _traffic, rmap = arpanet_map
    base = rmap.mean_base_utilization(net)
    assert 0.0 < base < 1.0


def test_ring_response_steps_at_shed_costs():
    """On a 6-ring with uniform traffic the response drops exactly after
    each integer shed threshold."""
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 60_000.0)
    rmap = build_response_map(net, traffic)
    value = dict(zip(rmap.reported_costs, rmap.normalized_traffic))
    assert value[1.0] == pytest.approx(1.0)
    assert value[1.5] == pytest.approx(value[2.0])
    assert value[5.5] == pytest.approx(0.0)  # 5 is the largest shed cost


def test_restricting_to_subset_of_links():
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 60_000.0)
    rmap = build_response_map(net, traffic, link_ids=[0, 2])
    assert set(rmap.base_traffic_bps) == {0, 2}


def test_no_base_traffic_raises():
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 1): 1000.0})
    # Links that never carry 0->1 traffic have zero base: restricting to
    # one of them must raise.
    backward = net.links_between(3, 2)[0].link_id
    with pytest.raises(ValueError):
        build_response_map(net, traffic, link_ids=[backward])
