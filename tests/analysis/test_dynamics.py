"""Tests for dynamic (cobweb) behaviour (Figures 11 and 12)."""

import pytest

from repro.analysis import (
    build_response_map,
    cobweb_trace,
    equilibrium_point,
    reference_link,
)
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.metrics.params import DEFAULT_HNSPF_PARAMS
from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


@pytest.fixture(scope="module")
def rmap():
    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 366_000.0, weights=site_weights())
    return build_response_map(net, traffic)


@pytest.fixture(scope="module")
def link():
    return reference_link("56K-T", propagation_s=0.001)


class TestFigure11Dspf:
    def test_metastable_converges_from_nearby(self, rmap, link):
        metric = DelayMetric()
        eq = equilibrium_point(metric, link, rmap, 1.0)
        trace = cobweb_trace(
            metric, link, rmap, 1.0, periods=50,
            start_hops=eq.reported_cost_hops,
        )
        assert trace.converged(tolerance=0.5)

    def test_diverges_from_distant_start(self, rmap, link):
        """A start far from equilibrium swings to full amplitude: the
        link alternates between oversubscribed and idle."""
        metric = DelayMetric()
        trace = cobweb_trace(metric, link, rmap, 1.0, periods=50,
                             start_hops=8.0)
        assert not trace.converged(tolerance=1.0)
        assert trace.amplitude() > 10.0
        tail_util = trace.utilizations[-10:]
        assert min(tail_util) < 0.05   # idle phases
        assert max(tail_util) > 0.95   # oversubscribed phases

    def test_heavier_load_is_unstable_even_closer_in(self, rmap, link):
        metric = DelayMetric()
        trace = cobweb_trace(metric, link, rmap, 2.0, periods=60,
                             start_hops=5.0)
        assert trace.amplitude() > 5.0


class TestFigure12Hnspf:
    def test_converges_from_ease_in(self, rmap, link):
        """A new link starts at max cost and is eased in gradually."""
        metric = HopNormalizedMetric()
        trace = cobweb_trace(metric, link, rmap, 1.0, periods=60)
        assert trace.reported_hops[0] == pytest.approx(3.0)
        assert trace.converged(tolerance=0.5)
        # Cost descends monotonically during the ease-in phase.
        early = trace.reported_hops[:4]
        assert early == sorted(early, reverse=True)

    def test_converges_from_any_start(self, rmap, link):
        metric = HopNormalizedMetric()
        for start in (1.0, 2.0, 3.0):
            trace = cobweb_trace(metric, link, rmap, 1.0, periods=60,
                                 start_hops=start)
            assert trace.converged(tolerance=0.5), start

    def test_oscillation_bounded_by_movement_limits(self, rmap, link):
        """Even under extreme load the per-period swing is capped."""
        metric = HopNormalizedMetric()
        params = DEFAULT_HNSPF_PARAMS["56K-T"]
        trace = cobweb_trace(metric, link, rmap, 4.0, periods=80)
        steps = [
            abs(b - a) * 30.0
            for a, b in zip(trace.reported_hops, trace.reported_hops[1:])
        ]
        assert max(steps) <= params.max_up + 1e-9

    def test_unbounded_variant_oscillates_wider(self, rmap, link):
        """Ablation: removing the movement limits widens the swing (the
        paper: 'Without this bound, HN-SPF would oscillate with a much
        larger amplitude, but still would not be unstable like D-SPF')."""
        bounded = cobweb_trace(
            HopNormalizedMetric(), link, rmap, 3.0, periods=80
        )
        unbounded = cobweb_trace(
            HopNormalizedMetric(limit_movement=False), link, rmap, 3.0,
            periods=80,
        )
        assert unbounded.amplitude() >= bounded.amplitude()
        # ...but still bounded by the 3-hop cap, unlike D-SPF.
        assert max(unbounded.reported_hops) <= 3.0 + 1e-9


def test_trace_lengths(rmap, link):
    trace = cobweb_trace(HopNormalizedMetric(), link, rmap, 1.0, periods=25)
    assert len(trace.reported_hops) == 26
    assert len(trace.utilizations) == 25


def test_bad_periods_rejected(rmap, link):
    with pytest.raises(ValueError):
        cobweb_trace(HopNormalizedMetric(), link, rmap, 1.0, periods=0)


def test_mean_tail(rmap, link):
    trace = cobweb_trace(HopNormalizedMetric(), link, rmap, 0.1, periods=30)
    assert trace.mean_tail() == pytest.approx(1.0, abs=0.1)
