"""Tests for the configuration self-checks."""

from dataclasses import replace

import pytest

from repro.analysis import (
    all_passed,
    build_response_map,
    reference_link,
    validate_configuration,
)
from repro.metrics import DEFAULT_HNSPF_PARAMS, HopNormalizedMetric
from repro.topology import build_arpanet_1987, build_string_network
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


@pytest.fixture(scope="module")
def arpanet_setting():
    network = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(
        network, 366_000.0, weights=site_weights()
    )
    response = build_response_map(network, traffic)
    link = reference_link("56K-T", propagation_s=0.001)
    return network, traffic, link, response


def run_checks(setting, metric=None):
    network, traffic, link, response = setting
    return validate_configuration(
        network, traffic, link, metric=metric, response=response
    )


def test_paper_defaults_pass_everything(arpanet_setting):
    checks = run_checks(arpanet_setting)
    assert all_passed(checks), [str(c) for c in checks if not c.passed]
    assert len(checks) == 6


def test_oversized_cap_fails_shedding_check(arpanet_setting):
    """max_cost = 255 means ~8.5 relative hops: above the network's
    shed-everything point, D-SPF's failure mode."""
    wide = HopNormalizedMetric(params={"56K-T": replace(
        DEFAULT_HNSPF_PARAMS["56K-T"], max_cost=255,
        max_up=130, max_down=129,
    )})
    checks = {c.name: c for c in run_checks(arpanet_setting, wide)}
    assert not checks["cap-below-shedding-point"].passed


def test_no_ease_in_fails_check(arpanet_setting):
    metric = HopNormalizedMetric(ease_in=False)
    checks = {c.name: c for c in run_checks(arpanet_setting, metric)}
    assert not checks["ease-in-starts-expensive"].passed


def test_sluggish_limits_fail_reaction_check(arpanet_setting):
    slow = HopNormalizedMetric(params={"56K-T": replace(
        DEFAULT_HNSPF_PARAMS["56K-T"], max_up=3, max_down=2,
        min_change=1,
    )})
    checks = {c.name: c for c in run_checks(arpanet_setting, slow)}
    assert not checks["reacts-within-a-few-periods"].passed


def test_chain_topology_fails_shedding_check():
    """A chain has no alternate paths: adaptive routing is pointless and
    the check says so."""
    network = build_string_network(4)
    traffic = TrafficMatrix.uniform(network, 50_000.0)
    link = reference_link("56K-T", propagation_s=0.001)
    checks = {
        c.name: c
        for c in validate_configuration(network, traffic, link)
    }
    assert not checks["cap-below-shedding-point"].passed
    assert "no alternate paths" in checks["cap-below-shedding-point"].detail


def test_check_result_str():
    checks = run_checks_str = None
    from repro.analysis.validation import CheckResult

    ok = CheckResult("x", True, "fine")
    bad = CheckResult("y", False, "broken")
    assert str(ok).startswith("[PASS] x")
    assert str(bad).startswith("[FAIL] y")
