"""Property tests for the fluid model: conservation and bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import FluidNetworkModel
from repro.metrics import HopNormalizedMetric, MinHopMetric
from repro.topology import build_random_network
from repro.traffic import TrafficMatrix


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100),
    n=st.integers(min_value=3, max_value=10),
    extra=st.integers(min_value=1, max_value=8),
    total=st.floats(min_value=1_000.0, max_value=500_000.0),
)
def test_property_load_conservation(seed, n, extra, total):
    """Total link load equals sum over demands of demand * path length
    (every bit of demand appears on exactly its path's links)."""
    net = build_random_network(n, extra_circuits=extra, seed=seed)
    traffic = TrafficMatrix.uniform(net, total)
    model = FluidNetworkModel(net, MinHopMetric(), traffic)
    load = model.route_demands()
    expected = 0.0
    for (src, dst), bps in traffic.demands.items():
        hops = len(model._trees[src].path_links(dst))
        expected += bps * hops
    assert sum(load.values()) == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    rounds=st.integers(min_value=1, max_value=10),
)
def test_property_round_aggregates_bounded(seed, rounds):
    net = build_random_network(6, extra_circuits=4, seed=seed)
    traffic = TrafficMatrix.uniform(net, 100_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    trace = model.run(rounds=rounds)
    for r in trace.rounds:
        assert 0.0 <= r.mean_utilization <= 1.0
        assert r.mean_utilization <= r.max_utilization <= 1.0
        assert 0.0 <= r.churn <= 1.0
        assert r.overload_bps >= 0.0
        assert 22.0 <= r.mean_cost <= 255.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_property_hnspf_costs_within_line_bounds(seed):
    """After any number of rounds every cost respects its line type's
    [min, max] (the fluid loop cannot push the metric out of bounds)."""
    net = build_random_network(7, extra_circuits=5, seed=seed)
    traffic = TrafficMatrix.uniform(net, 200_000.0)
    model = FluidNetworkModel(net, HopNormalizedMetric(), traffic)
    model.run(rounds=12)
    for link in net.links:
        cost = model.costs[link.link_id]
        assert 30.0 <= cost <= 90.0  # all 56K-T in generated nets
