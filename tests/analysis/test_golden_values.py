"""Golden regression values for the deterministic analysis pipeline.

The response map and shedding statistics are pure functions of the
embedded topology and gravity matrix: any change to their exact values
means either the topology, the matrix, or the analysis algorithms
changed.  These tests pin the current values so such changes are always
deliberate (update the constants here together with EXPERIMENTS.md).
"""

import pytest

from repro.analysis import shed_cost_by_length
from repro.experiments.base import arpanet_response_map
from repro.topology import build_arpanet_1987

GOLDEN_RESPONSE = {
    0.5: 1.0,
    1.0: 1.0,
    1.5: 0.58826,
    2.5: 0.220802,
    3.5: 0.112355,
    4.5: 0.04039,
    5.5: 0.011773,
    6.5: 0.004867,
    7.5: 0.001705,
    8.5: 0.001011,
}

GOLDEN_SHED_ALL_MEANS = {
    1: 4.468354,
    2: 3.936709,
    3: 3.772152,
    4: 3.582278,
    5: 3.392405,
    6: 3.166667,
    7: 2.641026,
    8: 2.065789,
    9: 1.542373,
    10: 1.24,
}

GOLDEN_ROUTE_COUNTS = {
    1: 158, 2: 632, 3: 1634, 4: 2526, 5: 3546,
    6: 4258, 7: 3822, 8: 1718, 9: 518, 10: 76,
}


def test_response_map_golden():
    rmap = arpanet_response_map()
    values = dict(zip(rmap.reported_costs, rmap.normalized_traffic))
    for cost, expected in GOLDEN_RESPONSE.items():
        assert values[cost] == pytest.approx(expected, abs=1e-5), cost
    # The staircase: integer points equal the preceding half point.
    for cost in (2.0, 3.0, 4.0):
        assert values[cost] == pytest.approx(values[cost - 0.5])


def test_shedding_golden():
    stats = shed_cost_by_length(build_arpanet_1987())
    assert stats.lengths() == sorted(GOLDEN_SHED_ALL_MEANS)
    for length, expected in GOLDEN_SHED_ALL_MEANS.items():
        assert stats.shed_all_mean(length) == \
            pytest.approx(expected, abs=1e-5), length
    for length, expected in GOLDEN_ROUTE_COUNTS.items():
        assert len(stats.by_length[length]) == expected, length


def test_route_population_total():
    """Every (link, route) pair with a finite shed cost, by count."""
    assert sum(GOLDEN_ROUTE_COUNTS.values()) == 18_888
