"""Tests for route-shedding statistics (Figure 7)."""

import pytest

from repro.analysis import shed_cost_by_length
from repro.analysis.shedding import (
    hop_distances_without_link,
    routes_over_link,
)
from repro.topology import (
    build_arpanet_1987,
    build_ring_network,
    build_string_network,
)
from repro.traffic import TrafficMatrix


def test_hop_distances_bfs():
    net = build_string_network(4)
    dist = hop_distances_without_link(net, None, 0)
    assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}


def test_hop_distances_excluding_link():
    net = build_ring_network(4)
    forward = net.links_between(0, 1)[0].link_id
    dist = hop_distances_without_link(net, forward, 0)
    assert dist[1] == 3.0  # the long way round


def test_ring_shed_costs_are_detour_slack():
    """On a 6-ring, the 1-hop route over a link has a 5-hop alternative:
    shed cost = 5 - 0 - 0 = 5."""
    net = build_ring_network(6)
    link = net.links_between(0, 1)[0]
    routes = routes_over_link(net, link.link_id)
    one_hop = [r for r in routes if r.src == 0 and r.dst == 1]
    assert len(one_hop) == 1
    assert one_hop[0].length == 1
    assert one_hop[0].shed_cost == 5.0


def test_longer_routes_shed_earlier_on_ring():
    net = build_ring_network(6)
    link = net.links_between(0, 1)[0]
    routes = routes_over_link(net, link.link_id)
    by_pair = {(r.src, r.dst): r for r in routes}
    # 0->2 uses the link (2 hops), alternative is 4 hops: shed at 3.
    assert by_pair[(0, 2)].shed_cost == 3.0
    # 0->3 ties with the other way (3 vs 3) -> tie in favor: shed at 1.
    assert by_pair[(0, 3)].shed_cost == 1.0


def test_routes_not_using_link_excluded():
    net = build_ring_network(6)
    link = net.links_between(0, 1)[0]
    routes = routes_over_link(net, link.link_id)
    pairs = {(r.src, r.dst) for r in routes}
    assert (0, 5) not in pairs  # goes the other way
    assert (3, 2) not in pairs


def test_traffic_attached_to_routes():
    net = build_ring_network(4)
    matrix = TrafficMatrix({(0, 1): 600.0})
    link = net.links_between(0, 1)[0]
    routes = routes_over_link(net, link.link_id, matrix)
    route = next(r for r in routes if (r.src, r.dst) == (0, 1))
    assert route.traffic_bps == 600.0


def test_string_network_has_no_sheddable_routes():
    """A chain has no alternate paths: alt distances are infinite, so no
    route has a finite shed cost."""
    net = build_string_network(4)
    stats = shed_cost_by_length(net)
    assert stats.by_length == {}


class TestArpanetFigure7:
    """The paper's quantitative anchors on the ARPANET-like topology."""

    @pytest.fixture(scope="class")
    def stats(self):
        return shed_cost_by_length(build_arpanet_1987())

    def test_shed_all_decreases_with_route_length(self, stats):
        """Long routes have alternate paths only slightly longer."""
        lengths = stats.lengths()
        means = [stats.shed_all_mean(l) for l in lengths]
        assert means[0] == max(means)
        assert means[-1] <= 2.0

    def test_mean_cost_to_shed_everything_about_four(self, stats):
        # Paper: "The average reported cost needed to shed all routes is
        # four hops."
        assert 3.0 <= stats.mean_cost_to_shed_everything() <= 6.0

    def test_one_hop_max_about_eight(self, stats):
        # Paper: "in the case of a one-hop route, the maximum reported
        # cost needed to shed the route is eight hops".
        assert 6.0 <= stats.shed_all_max(1) <= 10.0

    def test_hnspf_cap_below_shedding_point(self, stats):
        """HN-SPF's 3-hop cap sits below the average all-route shedding
        cost, so the average link can never shed everything."""
        assert stats.mean_cost_to_shed_everything() > 3.0

    def test_variability_statistics_available(self, stats):
        for length in stats.lengths():
            assert stats.shed_all_min(length) <= \
                stats.shed_all_mean(length) <= stats.shed_all_max(length)
            assert stats.stdev(length) >= 0.0
            assert stats.minimum(length) >= 1.0

    def test_overall_route_mean_below_shed_all_mean(self, stats):
        assert stats.overall_mean() < stats.mean_cost_to_shed_everything()
        assert stats.overall_max() >= stats.shed_all_max(1)
