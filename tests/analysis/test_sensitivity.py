"""Tests for the HN-SPF parameter-sensitivity sweeps."""

import pytest

from repro.analysis import sweep_parameter
from repro.experiments.base import (
    arpanet_response_map,
    equilibrium_reference_link,
)
from repro.metrics.params import DEFAULT_HNSPF_PARAMS


@pytest.fixture(scope="module")
def setting():
    return (
        DEFAULT_HNSPF_PARAMS["56K-T"],
        equilibrium_reference_link(),
        arpanet_response_map(),
    )


def test_higher_cap_sheds_more(setting):
    """Raising max_cost slides the metric toward D-SPF: more shedding,
    lower equilibrium utilization at overload."""
    base, link, rmap = setting
    points = sweep_parameter(base, "max_cost", [90, 150, 255],
                             link, rmap, offered_load=2.0)
    utilizations = [p.equilibrium_utilization for p in points]
    assert utilizations == sorted(utilizations, reverse=True)


def test_higher_threshold_holds_more_traffic(setting):
    base, link, rmap = setting
    points = sweep_parameter(
        base, "utilization_threshold", [0.0, 0.25, 0.5, 0.75],
        link, rmap, offered_load=2.0,
    )
    utilizations = [p.equilibrium_utilization for p in points]
    assert utilizations == sorted(utilizations)


def test_larger_steps_wider_oscillation(setting):
    """max_up trades convergence speed for oscillation amplitude; the
    equilibrium itself does not move."""
    base, link, rmap = setting
    points = sweep_parameter(base, "max_up", [5, 17, 45],
                             link, rmap, offered_load=2.0)
    amplitudes = [p.oscillation_amplitude_hops for p in points]
    assert amplitudes[0] < amplitudes[-1]
    utilizations = {round(p.equilibrium_utilization, 2) for p in points}
    assert len(utilizations) == 1


def test_max_up_keeps_march_asymmetry(setting):
    """The sweep must produce valid parameter sets: max_down tracks."""
    from repro.analysis.sensitivity import _vary

    base, _link, _rmap = setting
    varied = _vary(base, "max_up", 25)
    assert varied.max_up == 25
    assert varied.max_down == 24


def test_line_type_mismatch_rejected(setting):
    base, _link, rmap = setting
    from repro.analysis import reference_link

    satellite = reference_link("56K-S")
    with pytest.raises(ValueError, match="56K-S"):
        sweep_parameter(base, "max_cost", [90], satellite, rmap, 1.0)


def test_points_carry_all_fields(setting):
    base, link, rmap = setting
    (point,) = sweep_parameter(base, "max_cost", [90], link, rmap, 1.0)
    assert point.value == 90.0
    assert 0.0 < point.equilibrium_utilization <= 1.0
    assert 1.0 <= point.equilibrium_cost_hops <= 3.0
    assert point.oscillation_amplitude_hops >= 0.0
