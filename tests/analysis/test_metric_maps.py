"""Tests for metric maps (Figures 4 and 5)."""

import pytest

from repro.analysis import metric_map, normalized_metric_map, reference_link
from repro.analysis.metric_maps import utilization_grid
from repro.metrics import DelayMetric, HopNormalizedMetric


def test_reference_link_types():
    link = reference_link("9.6K-S")
    assert link.line_type.name == "9.6K-S"
    assert link.propagation_s > 0.2


def test_utilization_grid():
    grid = utilization_grid(5, top=1.0)
    assert grid == [0.0, 0.25, 0.5, 0.75, 1.0]
    with pytest.raises(ValueError):
        utilization_grid(1)
    with pytest.raises(ValueError):
        utilization_grid(10, top=0.0)


def test_fig4_normalization_starts_at_one():
    """Both normalized curves start at 1.0 (idle / idle)."""
    link = reference_link("56K-T", propagation_s=0.001)
    grid = [0.0, 0.5, 0.9]
    for metric in (DelayMetric(), HopNormalizedMetric()):
        curve = normalized_metric_map(metric, link, grid)
        assert curve[0][1] == pytest.approx(1.0)


def test_fig4_dspf_steeper_than_hnspf_at_high_utilization():
    """The paper's Figure-4 punchline."""
    link = reference_link("56K-T", propagation_s=0.001)
    grid = [0.95]
    dspf = normalized_metric_map(DelayMetric(), link, grid)[0][1]
    hnspf = normalized_metric_map(HopNormalizedMetric(), link, grid)[0][1]
    assert hnspf <= 3.0  # bounded at max/min = 90/30
    assert dspf > 2 * hnspf


def test_fig4_hnspf_satellite_flatter_relative_shape():
    """Satellite starts at 2x relative cost and converges to the same
    maximum as terrestrial."""
    t_link = reference_link("56K-T")
    s_link = reference_link("56K-S")
    metric = HopNormalizedMetric()
    t_curve = dict(metric_map(metric, t_link, [0.0, 0.99]))
    s_curve = dict(metric_map(metric, s_link, [0.0, 0.99]))
    assert s_curve[0.0] == pytest.approx(2 * t_curve[0.0])
    assert s_curve[0.99] == pytest.approx(t_curve[0.99], rel=0.05)


def test_fig5_ordering_at_low_utilization():
    """Idle costs: 56K-T < 56K-S < 9.6K-T < 9.6K-S (Figure 5)."""
    metric = HopNormalizedMetric()
    idle = {
        name: metric.cost_at_utilization(reference_link(name), 0.0)
        for name in ("56K-T", "56K-S", "9.6K-T", "9.6K-S")
    }
    assert idle["56K-T"] < idle["56K-S"] < idle["9.6K-T"] < idle["9.6K-S"]


def test_fig5_full_96_vs_idle_56_about_7x():
    metric = HopNormalizedMetric()
    full_96 = metric.cost_at_utilization(reference_link("9.6K-T"), 1.0)
    idle_56 = metric.cost_at_utilization(reference_link("56K-T"), 0.0)
    assert full_96 / idle_56 == pytest.approx(7.0, abs=0.5)


def test_fig5_curves_monotone():
    metric = HopNormalizedMetric()
    for name in ("56K-T", "56K-S", "9.6K-T", "9.6K-S"):
        link = reference_link(name)
        curve = metric_map(metric, link, utilization_grid(30))
        costs = [c for _u, c in curve]
        assert costs == sorted(costs), name
