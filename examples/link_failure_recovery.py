#!/usr/bin/env python3
"""Link failure, recovery, and the ease-in of a returning line.

Drops the MIT-BBN circuit of the ARPANET-like topology mid-run, watches
routing flow around it, restores it, and shows HN-SPF easing the line
back into service from its maximum cost -- *"routing will converge to its
equilibrium slowly by pulling in a little more traffic with each routing
period"*.

Run:  python examples/link_failure_recovery.py
"""

from repro.metrics import HopNormalizedMetric
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


def main() -> None:
    network = build_arpanet_1987()
    mit = network.node_by_name("MIT").node_id
    bbn = network.node_by_name("BBN").node_id
    circuit = network.links_between(mit, bbn)[0]

    traffic = TrafficMatrix.gravity(
        network, 250_000.0, weights=site_weights()
    )
    simulation = NetworkSimulation(
        network, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=400.0, warmup_s=50.0, seed=7),
    )
    simulation.fail_circuit_at(circuit.link_id, at_s=120.0)
    simulation.restore_circuit_at(circuit.link_id, at_s=220.0)
    report = simulation.run()

    print(f"MIT->BBN circuit (link {circuit.link_id}, "
          f"{circuit.line_type}) failed at t=120s, restored at t=220s\n")
    from repro.metrics import DEFAULT_HNSPF_PARAMS

    max_cost = DEFAULT_HNSPF_PARAMS[circuit.line_type.name].max_cost
    print("advertised cost timeline:")
    recovered = False
    for t, cost in simulation.stats.cost_series(circuit.link_id):
        tag = ""
        if cost >= 2 ** 20:
            tag = "   <- DOWN advertisement"
            recovered = False
        elif t >= 220.0 and not recovered and cost == max_cost:
            tag = "   <- ease-in from max cost"
            recovered = True
        print(f"  t={t:6.1f}s  cost={min(cost, 999999):>7d}{tag}")

    print("\nutilization of the circuit (10 s intervals):")
    for t, u in simulation.stats.utilization_history[circuit.link_id]:
        phase = "down" if 120.0 <= t < 220.0 else "up"
        print(f"  t={t:6.1f}s  {u:5.2f}  ({phase})")

    print(f"\noverall delivery ratio: {report.delivery_ratio:.3f} "
          f"(traffic rides alternate paths while the circuit is down)")


if __name__ == "__main__":
    main()
