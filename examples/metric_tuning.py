#!/usr/bin/env python3
"""Tailoring HN-SPF parameters to a custom network.

The paper: *"We designed the HN-SPF module so that these values would be
easy to change, and envisioned that parameter sets would be tailored to
the needs of individual networks."*  This example tunes the metric for a
small high-load hub-and-spoke network where the operator wants links to
start shedding at 30% utilization instead of 50%, and compares the
equilibrium behaviour of the stock and tuned parameter sets.

Run:  python examples/metric_tuning.py
"""

from dataclasses import replace

from repro.analysis import (
    build_response_map,
    equilibrium_utilization_curve,
    reference_link,
)
from repro.metrics import DEFAULT_HNSPF_PARAMS, HopNormalizedMetric
from repro.report import ascii_table
from repro.topology import build_grid_network
from repro.traffic import TrafficMatrix


def main() -> None:
    # The operator's network: a 3x3 grid of 56 kb/s lines.
    network = build_grid_network(3, 3)
    traffic = TrafficMatrix.uniform(network, total_bps=200_000.0)
    response = build_response_map(network, traffic)
    link = reference_link("56K-T", propagation_s=0.001)

    stock = HopNormalizedMetric()
    # Tuned: shed earlier (30% knee) and allow a slightly wider range
    # (max 120 = +3 hops) for this topology's longer detours.
    tuned_params = replace(
        DEFAULT_HNSPF_PARAMS["56K-T"],
        utilization_threshold=0.3,
        max_cost=120,
    )
    tuned = HopNormalizedMetric(params={"56K-T": tuned_params})

    loads = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0]
    stock_curve = equilibrium_utilization_curve(stock, link, response, loads)
    tuned_curve = equilibrium_utilization_curve(tuned, link, response, loads)

    print(ascii_table(
        ["offered load", "stock (50% knee) util", "tuned (30% knee) util"],
        [
            (f"{load:.2f}", s.utilization, t.utilization)
            for load, s, t in zip(loads, stock_curve, tuned_curve)
        ],
        title="Equilibrium utilization on a 3x3 grid",
    ))
    print(
        "\nThe tuned metric diverts traffic earlier: lower equilibrium\n"
        "utilization at moderate loads (more headroom for bursts), at\n"
        "the price of longer paths.  Every constant lives in a\n"
        "per-line-type HnspfParams dataclass -- nothing else changes."
    )


if __name__ == "__main__":
    main()
