#!/usr/bin/env python3
"""The Figure-1 experiment: watch D-SPF oscillate, then HN-SPF stabilize.

Two regions are joined by two identical 56 kb/s bridges, A and B, and
offered heavy inter-region traffic.  Under the old delay metric all
traffic stampedes from one bridge to the other every routing period;
under the revised metric the two bridges share the load with bounded
swings.  The script prints the bridge utilization timeline side by side.

Run:  python examples/oscillation_demo.py
"""

import statistics

from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix


def bar(value: float, width: int = 20) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def run_metric(metric):
    built = build_two_region_network(nodes_per_region=4)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=90_000.0
    )
    simulation = NetworkSimulation(
        built.network, metric, traffic,
        ScenarioConfig(duration_s=400.0, warmup_s=100.0, seed=1),
    )
    report = simulation.run()
    series = {}
    for name, (forward, _back) in (("A", built.bridge_a),
                                   ("B", built.bridge_b)):
        series[name] = [
            v for t, v in
            simulation.stats.utilization_history[forward.link_id]
            if t >= 100.0
        ]
    return report, series


def main() -> None:
    for metric in (DelayMetric(), HopNormalizedMetric()):
        report, series = run_metric(metric)
        print(f"\n=== {metric.name} ===")
        print("interval   bridge A               bridge B")
        for i, (a, b) in enumerate(zip(series["A"], series["B"])):
            print(f"  t+{10 * i:4d}s  {bar(a)} {a:4.2f}   {bar(b)} {b:4.2f}")
            if i >= 19:
                break
        gap = statistics.mean(
            abs(a - b) for a, b in zip(series["A"], series["B"])
        )
        print(f"round-trip delay {report.round_trip_delay_ms:6.1f} ms | "
              f"drops {report.congestion_drops:4d} | "
              f"mean |A-B| utilization gap {gap:.2f}")
    print("\nD-SPF: the bars alternate (one bridge overloaded, the other "
          "idle).\nHN-SPF: both bridges stay loaded; swings are bounded "
          "by the movement limits.")


if __name__ == "__main__":
    main()
