#!/usr/bin/env python3
"""MILNET-scale sweep: the large generated topologies as one fleet.

Drives the three MILNET-and-beyond scale rungs (``grid64``,
``rand256``, ``rand512``) through ``run_many(..., stream=True)`` with
the full fast-path configuration -- calendar queue, batched SPF repair,
incremental flooding, duplicate-ack suppression -- and folds the
streamed worker telemetry into one fleet summary.  ``on_error=
"collect"`` is the resilience story: a crashed rung becomes a recorded
failure with a replay recipe, never a dead sweep -- and the streamed
per-checkpoint deltas keep the fleet aggregate readable mid-flight,
not only after the slowest rung finishes.

Run:  python examples/milnet_sweep.py
"""

from repro.sim import RunSpec, ScenarioConfig, StreamConfig, run_many

#: (scenario, duration_s, warmup_s) -- durations shrink as the rung
#: grows so each run's event count stays example-sized.
RUNGS = (
    ("grid64", 20.0, 5.0),
    ("rand256", 4.0, 1.0),
    ("rand512", 2.0, 0.5),
)


def fast_path_config(duration_s: float, warmup_s: float) -> ScenarioConfig:
    return ScenarioConfig(
        duration_s=duration_s, warmup_s=warmup_s, seed=3,
        scheduler="calendar", batched_spf=True,
        incremental_flooding=True, dup_ack_suppression=True,
    )


def main() -> None:
    specs = [
        RunSpec(name, fast_path_config(duration_s, warmup_s))
        for name, duration_s, warmup_s in RUNGS
    ]
    fleet = run_many(
        specs,
        on_error="collect",     # a failed rung is reported, not fatal
        stream=StreamConfig(checkpoint_s=2.0),
    )

    print("MILNET-scale sweep (calendar + batched SPF + incremental "
          "flooding + dup-ack suppression)\n")
    header = (f"{'scenario':<10} {'delivered':>10} {'ratio':>6} "
              f"{'events':>10} {'updates':>8} {'acks':>8} "
              f"{'dup skip':>8} {'piggy':>6} {'retrans':>7}")
    print(header)
    print("-" * len(header))
    for spec, report in zip(specs, fleet.reports):
        if report is None:
            print(f"{spec.scenario:<10} FAILED")
            continue
        t = report.telemetry
        print(f"{spec.scenario:<10} {report.delivered_packets:>10} "
              f"{report.delivery_ratio:>6.3f} {t.events_processed:>10} "
              f"{t.update_packets_sent:>8} {t.ack_packets_sent:>8} "
              f"{t.dup_acks_suppressed:>8} {t.owed_acks_piggybacked:>6} "
              f"{t.updates_retransmitted:>7}")

    total = fleet.telemetry
    print(f"\nfleet: {fleet.progress.status()}; "
          f"{total.events_processed} events across {total.runs} runs, "
          f"{total.control_packets_sent} control packets "
          f"({total.ack_packets_sent} acks, "
          f"{total.dup_acks_suppressed} duplicate-acks suppressed, "
          f"{total.owed_acks_piggybacked} owed acks piggybacked)")
    for failure in fleet.failures:
        print(f"failure: {failure}")
    if fleet.ok:
        print("all rungs completed; retransmissions stayed at "
              f"{total.updates_retransmitted} "
              "(suppression never cost reliability)")


if __name__ == "__main__":
    main()
