#!/usr/bin/env python3
"""The original 1969 ARPANET routing algorithm, and why it was replaced.

Runs the distributed Bellman-Ford computation with its instantaneous-
queue-length metric on a small ring, then demonstrates the failure mode
the paper recounts: a queue spike plus stale neighbour tables produces a
forwarding *loop* -- something SPF's consistent link-state view
structurally avoids.

Run:  python examples/legacy_bellman_ford.py
"""

from repro.routing import (
    BellmanFordNode,
    has_routing_loop,
    queue_length_metric,
)
from repro.topology import build_ring_network


def exchange_round(network, nodes, metrics):
    vectors = {n: node.snapshot() for n, node in nodes.items()}
    changed = False
    for n, node in nodes.items():
        for neighbour in network.neighbors(n):
            node.receive_vector(neighbour, vectors[neighbour])
        changed |= node.recompute(metrics[n])
    return changed


def main() -> None:
    network = build_ring_network(5)
    nodes = {n: BellmanFordNode(network, n) for n in network.nodes}
    # Idle queues everywhere: metric = 0 + constant.
    metrics = {
        n: {nb: queue_length_metric(0) for nb in network.neighbors(n)}
        for n in network.nodes
    }

    rounds = 0
    while exchange_round(network, nodes, metrics):
        rounds += 1
    print(f"converged after {rounds} exchange rounds (2/3 s each)")
    print("distances from node 0:",
          {d: v for d, v in nodes[0].table.distance.items()})

    # Now the 1969 failure mode: a queue spike at node 1 toward node 2.
    print("\nqueue spike: node 1's queue toward node 2 jumps to 300 "
          "packets...")
    metrics[1][2] = queue_length_metric(300)
    metrics[1][0] = queue_length_metric(0)
    # Node 1 re-minimizes immediately; its neighbours still hold stale
    # tables from before the spike.
    nodes[1].recompute(metrics[1])

    looped, cycle = has_routing_loop(nodes, dest=2)
    print(f"forwarding loop toward node 2? {looped} "
          f"(cycle: {cycle})")
    print("node 0 thinks: via", nodes[0].next_hop(2),
          "| node 1 thinks: via", nodes[1].next_hop(2))

    print("\nAfter more exchange rounds the tables re-converge -- but "
          "with the\ninstantaneous metric fluctuating every 2/3 s, the "
          "loops keep re-forming.\nThis is why the ARPANET moved to SPF "
          "(1979) and then to the revised\nmetric this library "
          "reproduces (1987).")


if __name__ == "__main__":
    main()
