#!/usr/bin/env python3
"""Quickstart: simulate a small network under the revised ARPANET metric.

Builds a 6-node ring, offers it uniform traffic, runs a packet-level
simulation under HN-SPF, and prints the network-wide performance report
-- the same indicators the paper's Table 1 uses.

Run:  python examples/quickstart.py
"""

from repro.metrics import HopNormalizedMetric
from repro.report import ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network
from repro.traffic import TrafficMatrix


def main() -> None:
    # 1. A topology: six PSNs in a ring of 56 kb/s terrestrial circuits.
    network = build_ring_network(6)

    # 2. A workload: 60 kb/s spread uniformly over all node pairs.
    traffic = TrafficMatrix.uniform(network, total_bps=60_000.0)

    # 3. The metric under study: the revised (hop-normalized) metric.
    #    Swap in DelayMetric() to watch the pre-1987 behaviour.
    metric = HopNormalizedMetric()

    # 4. Simulate five minutes of network time.
    simulation = NetworkSimulation(
        network,
        metric,
        traffic,
        ScenarioConfig(duration_s=300.0, warmup_s=60.0, seed=42),
    )
    report = simulation.run()

    print(ascii_table(
        ["indicator", "value"],
        [
            ("metric", report.metric_name),
            ("internode traffic (kb/s)", report.internode_traffic_kbps),
            ("round-trip delay (ms)", report.round_trip_delay_ms),
            ("routing updates / s", report.updates_per_s),
            ("actual path (hops)", report.actual_path_hops),
            ("minimum path (hops)", report.minimum_path_hops),
            ("path ratio", report.path_ratio),
            ("delivery ratio", report.delivery_ratio),
            ("congestion drops", report.congestion_drops),
        ],
        title="Quickstart: 6-node ring under HN-SPF",
    ))

    # 5. Look at one link's advertised cost over time: after the ease-in
    #    from the maximum (90) it settles at the idle minimum (30).
    series = simulation.stats.cost_series(0)
    print("\nlink 0 advertised cost:",
          " ".join(f"{int(t)}s:{c}" for t, c in series[:8]))


if __name__ == "__main__":
    main()
