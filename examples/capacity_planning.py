#!/usr/bin/env python3
"""Capacity planning with the fluid model: how much load can routing absorb?

The paper's operational framing: *"HN-SPF is the safety net that
compensates for bad network designs and unexpected changes in traffic
patterns ... it can automatically handle variations in traffic that are
several times the designed traffic level."*  This example sweeps the
offered load on the ARPANET-like topology through the fluid model (no
packets: seconds, not minutes), reports when each metric's network stops
settling, and exports the sweep as CSV for plotting.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import FluidNetworkModel
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_table
from repro.report.export import write_series_csv
from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix

BASE_LOAD_BPS = 366_000.0  # the paper's May 1987 peak hour
SCALES = (0.5, 1.0, 1.5, 2.0, 3.0)


def main() -> None:
    rows = []
    overload_series = {"D-SPF": [], "HN-SPF": []}
    for scale in SCALES:
        for metric_cls in (DelayMetric, HopNormalizedMetric):
            network = build_arpanet_1987()
            traffic = TrafficMatrix.gravity(
                network, BASE_LOAD_BPS * scale, weights=site_weights()
            )
            model = FluidNetworkModel(network, metric_cls(), traffic)
            trace = model.run(rounds=40)
            name = metric_cls().name
            rows.append((
                f"{scale:.1f}x",
                name,
                trace.tail_mean_utilization(),
                trace.tail_churn(),
                trace.tail_overload() / 1000.0,
                "yes" if trace.settled(churn_tolerance=0.1) else "NO",
            ))
            overload_series[name].append(
                (scale, trace.tail_overload() / 1000.0)
            )

    print(ascii_table(
        ["offered load", "metric", "mean util", "cost churn",
         "overload (kb/s)", "settled?"],
        rows,
        title="Fluid sweep of the ARPANET-like network "
              "(40 routing periods each)",
    ))

    path = write_series_csv(
        "capacity_sweep.csv", overload_series, x_label="load_scale"
    )
    print(f"\noverload-vs-load series written to {path} "
          f"(plot it with your tool of choice)")
    print(
        "\nReading: D-SPF never settles at or past the design load and\n"
        "strands hundreds of kb/s on saturated links; HN-SPF stays\n"
        "settled at the design point and degrades gracefully at\n"
        "multiples of it -- the paper's 'safety net'."
    )


if __name__ == "__main__":
    main()
